//! Sharded residual-capacity ownership: locality partition + atomic ledger.
//!
//! The deterministic pipeline funnels every commit through one coordinator,
//! which caps parallel throughput at sequential speed (see
//! `BENCH_stream.json`). This module provides the substrate for the relaxed
//! commit order: cloudlets are graph-partitioned into `K` shards by `l`-hop
//! locality ([`ShardPartition`]), so that most requests' `N_l^+` footprint
//! lands inside a single shard, and the residual capacity itself moves into
//! an atomics-guarded owner ([`ShardedCapacity`]) whose two-phase
//! reserve/commit/abort path is lock-free — a shard-local request commits
//! without ever synchronizing with other shards' traffic.
//!
//! Partitioning rule: two cloudlets attract each other proportionally to how
//! many nodes' `N_l^+` cloudlet slices contain both (their *co-occurrence*
//! in the [`NeighborhoodIndex`] CSR). Shards are grown greedily over that
//! co-occurrence graph — seed a shard, repeatedly absorb the unassigned
//! cloudlet with the largest attachment to it, stop at the size target — a
//! BFS-flavored region growth that keeps each shard's cloudlets mutually
//! close, hence keeps footprints single-shard.
//!
//! Consistency story: a single `try_debit`/`credit` is a CAS loop on the
//! node's f64-as-bits residual, so per-node capacity never goes negative and
//! never exceeds `C_v`, under any interleaving. A multi-node
//! [`ShardedCapacity::try_reserve`] debits nodes one at a time (ascending)
//! and rolls back on first failure — it is *not* atomic across nodes, so a
//! concurrent observer can see a transiently-held partial reservation, but
//! capacity is conserved exactly: every debit is either rolled back or ends
//! up in a committed [`ShardReservation`]. The optional per-shard commit log
//! records the exact per-node amounts of every committed reservation, which
//! is what lets the relaxed engine *prove* a run linearizes: replaying the
//! log sequentially must land on the same residuals (see
//! `relaug::relaxed`).

use crate::graph::NodeId;
use crate::neighborhood::NeighborhoodIndex;
use crate::network::{MecNetwork, ReservationState, ReserveError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A partition of the network's cloudlets into `K` locality shards.
#[derive(Debug, Clone)]
pub struct ShardPartition {
    num_shards: usize,
    /// Per *node*: owning shard for cloudlets, `u32::MAX` for plain nodes.
    shard_of_node: Vec<u32>,
    /// Cloudlet members per shard, ascending by node id.
    members: Vec<Vec<NodeId>>,
}

/// Where a request's cloudlet footprint lands relative to the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FootprintClass {
    /// No cloudlets in range — the request cannot be admitted locally.
    Empty,
    /// Every footprint cloudlet belongs to this one shard.
    Local(usize),
    /// The footprint spans two or more shards.
    Straddling,
}

/// Minimum useful shard-local fraction. A layout where fewer than half of
/// all request footprints are single-shard funnels the majority through the
/// ordered straddle path while still fragmenting ownership — strictly worse
/// than fewer, bigger shards. [`ShardPartition::build`] merges the
/// most-entangled shard pair until the measured fraction clears this bar (or
/// a single shard remains). Merging never turns a local footprint into a
/// straddling one, so the pass is monotone and terminates. Hub-and-spoke
/// topologies (e.g. the SAGIN presets, where every edge node reaches the
/// all-cloudlet space core within two hops) legitimately collapse to one
/// owner shard; the contention report makes that visible.
pub const MIN_USEFUL_LOCAL_FRACTION: f64 = 0.5;

impl ShardPartition {
    /// Partition the network's cloudlets into (at most) `num_shards` shards
    /// by co-occurrence in `nbhd`'s per-node cloudlet slices. Deterministic:
    /// ties break toward the smaller node id. When the network has fewer
    /// cloudlets than requested shards, the shard count is clamped so no
    /// shard is empty; growth also reserves one seed per not-yet-grown shard
    /// for the same reason. After the balanced greedy pass, shards are merged
    /// (highest inter-shard co-occurrence first) while the measured
    /// shard-local fraction is below [`MIN_USEFUL_LOCAL_FRACTION`], so the
    /// shard count adapts downward on topologies whose footprints overlap
    /// globally.
    pub fn build(network: &MecNetwork, nbhd: &NeighborhoodIndex, num_shards: usize) -> Self {
        let cloudlets = network.cloudlet_ids();
        let c = cloudlets.len();
        let k = num_shards.max(1).min(c.max(1));
        let n = network.num_nodes();
        let mut shard_of_node = vec![u32::MAX; n];
        if c == 0 {
            return ShardPartition { num_shards: k, shard_of_node, members: vec![Vec::new()] };
        }
        // Cloudlet node id -> position in `cloudlets`.
        let mut pos_of = vec![u32::MAX; n];
        for (p, &cl) in cloudlets.iter().enumerate() {
            pos_of[cl.index()] = p as u32;
        }
        // Co-occurrence weights between cloudlet positions: +1 for every node
        // whose `N_l^+` slice contains both. Footprints wider than the cap
        // are skipped: a request that reaches hundreds of cloudlets straddles
        // any non-trivial partition, so its pairs carry no locality signal —
        // and enumerating them is O(|slice|^2), which on dense hierarchies
        // (sagin-1k: median footprint ~830 cloudlets at l=2) dwarfs
        // everything else the partitioner does.
        const MAX_COOCCURRENCE_FOOTPRINT: usize = 64;
        let mut weights: HashMap<(u32, u32), u64> = HashMap::new();
        for v in 0..n {
            let slice = nbhd.cloudlets_within(NodeId(v));
            if slice.len() > MAX_COOCCURRENCE_FOOTPRINT {
                continue;
            }
            for i in 0..slice.len() {
                let a = pos_of[slice[i].index()];
                for &bnode in &slice[i + 1..] {
                    let b = pos_of[bnode.index()];
                    *weights.entry((a.min(b), a.max(b))).or_insert(0) += 1;
                }
            }
        }
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); c];
        for (&(a, b), &w) in &weights {
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        }
        for row in &mut adj {
            row.sort_unstable_by_key(|&(p, _)| p);
        }
        let total_weight: Vec<u64> =
            adj.iter().map(|row| row.iter().map(|&(_, w)| w).sum()).collect();

        let target = c.div_ceil(k);
        let mut unassigned = c;
        let mut assigned: Vec<Option<u32>> = vec![None; c];
        // `attach[p]`: co-occurrence weight from unassigned cloudlet `p` to
        // any already-assigned cloudlet — low attachment makes a good seed
        // for the *next* shard (it sits far from existing regions).
        let mut attach = vec![0u64; c];
        // `gain[p]`: weight from unassigned `p` to the shard currently being
        // grown.
        let mut gain = vec![0u64; c];
        for s in 0..k {
            // Seed: the unassigned cloudlet least attached to prior shards;
            // among those, the best-connected one (so growth has somewhere to
            // go); ties toward the smaller position.
            let Some(seed) = (0..c)
                .filter(|&p| assigned[p].is_none())
                .min_by_key(|&p| (attach[p], u64::MAX - total_weight[p], p))
            else {
                break;
            };
            let mut size = 0usize;
            gain.fill(0);
            let grab = |p: usize,
                        assigned: &mut Vec<Option<u32>>,
                        gain: &mut Vec<u64>,
                        attach: &mut Vec<u64>| {
                assigned[p] = Some(s as u32);
                for &(q, w) in &adj[p] {
                    if assigned[q as usize].is_none() {
                        gain[q as usize] += w;
                        attach[q as usize] += w;
                    }
                }
            };
            grab(seed, &mut assigned, &mut gain, &mut attach);
            unassigned -= 1;
            size += 1;
            // Reserve one unassigned cloudlet as a seed for every shard still
            // to be grown, so no later shard comes up empty.
            while size < target && unassigned > k - s - 1 {
                // Absorb the unassigned cloudlet most attached to this shard;
                // stop early if nothing unassigned touches it (the remaining
                // cloudlets belong to other regions or are isolated).
                let Some(best) = (0..c)
                    .filter(|&p| assigned[p].is_none() && gain[p] > 0)
                    .max_by_key(|&p| (gain[p], usize::MAX - p))
                else {
                    break;
                };
                grab(best, &mut assigned, &mut gain, &mut attach);
                unassigned -= 1;
                size += 1;
            }
        }
        // Leftovers (early-stopped growth, isolated cloudlets): attach each
        // to the shard it co-occurs with most, defaulting to the smallest
        // shard so nothing is left unowned.
        let mut sizes = vec![0usize; k];
        for a in assigned.iter().flatten() {
            sizes[*a as usize] += 1;
        }
        for p in 0..c {
            if assigned[p].is_some() {
                continue;
            }
            let mut shard_weight = vec![0u64; k];
            for &(q, w) in &adj[p] {
                if let Some(s) = assigned[q as usize] {
                    shard_weight[s as usize] += w;
                }
            }
            let best = (0..k)
                .max_by_key(|&s| (shard_weight[s], usize::MAX - sizes[s], k - s))
                .expect("at least one shard");
            assigned[p] = Some(best as u32);
            sizes[best] += 1;
        }
        // Adaptive merge: while most footprints straddle, fold the two most
        // entangled shards into one. Every straddle witnesses positive
        // inter-shard co-occurrence weight, so a merge candidate always
        // exists while the fraction is below 1.
        let measured_fraction = |assigned: &[Option<u32>]| -> f64 {
            let mut covered = 0usize;
            let mut local = 0usize;
            for v in 0..n {
                let slice = nbhd.cloudlets_within(NodeId(v));
                let Some(&first) = slice.first() else { continue };
                covered += 1;
                let s0 = assigned[pos_of[first.index()] as usize];
                if slice[1..].iter().all(|q| assigned[pos_of[q.index()] as usize] == s0) {
                    local += 1;
                }
            }
            if covered == 0 {
                1.0
            } else {
                local as f64 / covered as f64
            }
        };
        let mut k = k;
        let mut shards_here: Vec<u32> = Vec::new();
        while k > 1 && measured_fraction(&assigned) < MIN_USEFUL_LOCAL_FRACTION {
            // For every shard pair, count the footprints both appear in —
            // exactly the straddles a merge of that pair would eliminate.
            let mut pair = vec![0u64; k * k];
            for v in 0..n {
                let slice = nbhd.cloudlets_within(NodeId(v));
                shards_here.clear();
                for q in slice {
                    let s = assigned[pos_of[q.index()] as usize].expect("assigned");
                    if !shards_here.contains(&s) {
                        shards_here.push(s);
                    }
                }
                shards_here.sort_unstable();
                for i in 0..shards_here.len() {
                    for &sj in &shards_here[i + 1..] {
                        pair[shards_here[i] as usize * k + sj as usize] += 1;
                    }
                }
            }
            let Some((s1, s2)) = (0..k)
                .flat_map(|a| ((a + 1)..k).map(move |b| (a as u32, b as u32)))
                .filter(|&(a, b)| pair[a as usize * k + b as usize] > 0)
                .max_by_key(|&(a, b)| {
                    (pair[a as usize * k + b as usize], std::cmp::Reverse((a, b)))
                })
            else {
                break;
            };
            for a in assigned.iter_mut().flatten() {
                if *a == s2 {
                    *a = s1;
                } else if *a > s2 {
                    *a -= 1;
                }
            }
            k -= 1;
        }
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for (p, &cl) in cloudlets.iter().enumerate() {
            let s = assigned[p].expect("every cloudlet assigned");
            shard_of_node[cl.index()] = s;
            members[s as usize].push(cl);
        }
        ShardPartition { num_shards: k, shard_of_node, members }
    }

    /// Number of shards actually built (≤ requested, ≥ 1).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Owning shard of `v`, `None` for non-cloudlet nodes.
    pub fn shard_of(&self, v: NodeId) -> Option<usize> {
        let s = self.shard_of_node[v.index()];
        (s != u32::MAX).then_some(s as usize)
    }

    /// Cloudlets owned by shard `s`, ascending by node id.
    pub fn members(&self, s: usize) -> &[NodeId] {
        &self.members[s]
    }

    /// Classify a request footprint (a slice of cloudlet ids, e.g.
    /// `NeighborhoodIndex::cloudlets_within(source)`).
    pub fn classify(&self, footprint: &[NodeId]) -> FootprintClass {
        let Some(&first) = footprint.first() else { return FootprintClass::Empty };
        // Single-owner partitions (e.g. after the adaptive merge collapses a
        // hub-and-spoke topology) classify in O(1): there is nothing to
        // straddle. On sagin-1k this skips an ~830-entry walk per request.
        if self.num_shards == 1 {
            return FootprintClass::Local(0);
        }
        let s = self.shard_of_node[first.index()];
        debug_assert_ne!(s, u32::MAX, "footprints contain only cloudlets");
        if footprint[1..].iter().all(|c| self.shard_of_node[c.index()] == s) {
            FootprintClass::Local(s as usize)
        } else {
            FootprintClass::Straddling
        }
    }

    /// Fraction of nodes with a non-empty cloudlet footprint whose footprint
    /// is single-shard — the static upper bound on how many requests can take
    /// the shard-local commit path (request sources are nodes).
    pub fn local_fraction(&self, nbhd: &NeighborhoodIndex) -> f64 {
        let mut covered = 0usize;
        let mut local = 0usize;
        for v in 0..nbhd.num_nodes() {
            match self.classify(nbhd.cloudlets_within(NodeId(v))) {
                FootprintClass::Empty => {}
                FootprintClass::Local(_) => {
                    covered += 1;
                    local += 1;
                }
                FootprintClass::Straddling => covered += 1,
            }
        }
        if covered == 0 {
            1.0
        } else {
            local as f64 / covered as f64
        }
    }
}

/// One committed reservation in a shard's commit log: the sequence tag the
/// committer supplied (request position) and the exact per-node debits.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitEntry {
    pub tag: u64,
    /// `(node index, amount)`, merged per node, ascending by node.
    pub debits: Vec<(usize, f64)>,
}

/// A pending multi-node reservation against [`ShardedCapacity`] — the atomic
/// twin of [`crate::network::Reservation`], with the same
/// pending → committed/aborted state machine and the same double-finish
/// protection.
#[derive(Debug)]
#[must_use = "a pending reservation holds capacity until committed or aborted"]
pub struct ShardReservation {
    debits: Vec<(usize, f64)>,
    home_shard: usize,
    state: ReservationState,
}

impl ShardReservation {
    pub fn state(&self) -> ReservationState {
        self.state
    }

    /// The lowest-indexed shard touched by the debits (log destination).
    pub fn home_shard(&self) -> usize {
        self.home_shard
    }

    pub fn total(&self) -> f64 {
        self.debits.iter().map(|&(_, a)| a).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.debits.is_empty()
    }
}

/// Atomics-guarded residual-capacity owner, partitioned into shards.
///
/// Each node's residual lives in an `AtomicU64` holding the f64 bit pattern;
/// debits and credits are CAS loops, so readers and writers on *different*
/// nodes never contend and same-node races resolve without locks. The
/// per-shard commit log (optional — it costs a mutex push per commit) is the
/// evidence trail the linearization checker replays.
#[derive(Debug)]
pub struct ShardedCapacity {
    partition: ShardPartition,
    capacity: Vec<f64>,
    bits: Vec<AtomicU64>,
    /// One commit log per shard; unused (never pushed) unless `log_enabled`.
    logs: Vec<Mutex<Vec<CommitEntry>>>,
    log_enabled: bool,
    /// Per-node bump-on-commit epoch counters: every permanent residual
    /// decrease (commit or clamped commit) bumps the epochs of the nodes it
    /// debits, letting the plan cache detect concurrent capacity movement
    /// without scanning residuals.
    epochs: crate::network::NodeEpochs,
}

impl ShardedCapacity {
    /// Wrap an initial residual vector (one entry per node, as produced by
    /// [`MecNetwork::residual_capacities`]) in atomic per-node cells.
    pub fn new(
        network: &MecNetwork,
        initial: &[f64],
        partition: ShardPartition,
        log_enabled: bool,
    ) -> Self {
        assert_eq!(initial.len(), network.num_nodes(), "residual must cover all nodes");
        let capacity: Vec<f64> =
            (0..network.num_nodes()).map(|v| network.capacity(NodeId(v))).collect();
        let bits: Vec<AtomicU64> = initial.iter().map(|&r| AtomicU64::new(r.to_bits())).collect();
        let logs = (0..partition.num_shards()).map(|_| Mutex::new(Vec::new())).collect();
        let epochs = crate::network::NodeEpochs::new(bits.len());
        ShardedCapacity { partition, capacity, bits, logs, log_enabled, epochs }
    }

    pub fn partition(&self) -> &ShardPartition {
        &self.partition
    }

    /// The per-node bump-on-commit epoch counters.
    pub fn epochs(&self) -> &crate::network::NodeEpochs {
        &self.epochs
    }

    /// Current capacity epoch of node `idx` (bumped on every commit that
    /// debits the node).
    pub fn epoch(&self, idx: usize) -> u64 {
        self.epochs.get(idx)
    }

    /// Current residual of node `idx` (a racy-but-coherent atomic load).
    pub fn residual(&self, idx: usize) -> f64 {
        f64::from_bits(self.bits[idx].load(Ordering::Acquire))
    }

    /// Snapshot the full residual vector. Only quiescent snapshots (no
    /// concurrent writers) are cross-node consistent.
    pub fn snapshot(&self) -> Vec<f64> {
        (0..self.bits.len()).map(|i| self.residual(i)).collect()
    }

    /// Lock-free single-node debit: fails (returning the observed residual)
    /// without side effects if the node lacks capacity; the same `1e-9`
    /// floating-point slack as [`MecNetwork::try_reserve`] applies.
    pub fn try_debit(&self, idx: usize, amount: f64) -> Result<(), f64> {
        debug_assert!(amount >= 0.0 && amount.is_finite());
        let cell = &self.bits[idx];
        let mut cur = f64::from_bits(cell.load(Ordering::Acquire));
        loop {
            if cur + 1e-9 < amount {
                return Err(cur);
            }
            let new = (cur - amount).max(0.0);
            match cell.compare_exchange_weak(
                cur.to_bits(),
                new.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(seen) => cur = f64::from_bits(seen),
            }
        }
    }

    /// Lock-free debit of `min(amount, residual)`; returns what was actually
    /// taken. This is the relaxed engine's overcommit fallback (the
    /// randomized rounding may legitimately ask for more than a bin holds —
    /// the sequential pipeline clamps at zero, and so does this).
    pub fn debit_clamped(&self, idx: usize, amount: f64) -> f64 {
        debug_assert!(amount >= 0.0 && amount.is_finite());
        let cell = &self.bits[idx];
        let mut cur = f64::from_bits(cell.load(Ordering::Acquire));
        loop {
            let take = amount.min(cur).max(0.0);
            let new = (cur - take).max(0.0);
            match cell.compare_exchange_weak(
                cur.to_bits(),
                new.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return take,
                Err(seen) => cur = f64::from_bits(seen),
            }
        }
    }

    /// Lock-free single-node credit — the inverse of a debit. Panics (all
    /// build profiles) if the credit would lift the residual above `C_v`
    /// beyond floating-point slack, mirroring
    /// [`MecNetwork::release_capacity`].
    pub fn credit(&self, idx: usize, amount: f64) {
        debug_assert!(amount >= 0.0 && amount.is_finite());
        let cell = &self.bits[idx];
        let mut cur = f64::from_bits(cell.load(Ordering::Acquire));
        loop {
            let restored = cur + amount;
            assert!(
                restored <= self.capacity[idx] + 1e-6,
                "credit of {amount} MHz would lift node {idx} above its capacity \
                 ({restored} > {})",
                self.capacity[idx]
            );
            let new = restored.min(self.capacity[idx]);
            match cell.compare_exchange_weak(
                cur.to_bits(),
                new.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = f64::from_bits(seen),
            }
        }
    }

    /// Phase one: debit every `(node, amount)` pair, all-or-nothing from the
    /// caller's perspective — nodes are debited ascending and on the first
    /// insufficiency everything already taken is credited back before the
    /// error returns. Zero amounts are dropped and same-node debits merge,
    /// exactly like [`MecNetwork::try_reserve`].
    pub fn try_reserve(&self, debits: &[(NodeId, f64)]) -> Result<ShardReservation, ReserveError> {
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(debits.len());
        for &(node, amount) in debits {
            assert!(amount >= 0.0 && amount.is_finite(), "reserve amount must be >= 0");
            if amount == 0.0 {
                continue;
            }
            let idx = node.index();
            match merged.iter_mut().find(|(n, _)| *n == idx) {
                Some((_, a)) => *a += amount,
                None => merged.push((idx, amount)),
            }
        }
        merged.sort_unstable_by_key(|a| a.0);
        for (i, &(idx, amount)) in merged.iter().enumerate() {
            if let Err(available) = self.try_debit(idx, amount) {
                for &(done, taken) in &merged[..i] {
                    self.credit(done, taken);
                }
                return Err(ReserveError::Insufficient {
                    node: NodeId(idx),
                    requested: amount,
                    available,
                });
            }
        }
        let home_shard = merged
            .iter()
            .filter_map(|&(idx, _)| self.partition.shard_of(NodeId(idx)))
            .min()
            .unwrap_or(0);
        Ok(ShardReservation { debits: merged, home_shard, state: ReservationState::Pending })
    }

    /// Phase two, success path: the debits become permanent and (when
    /// logging) land in the home shard's commit log under `tag`. Rejects
    /// non-pending reservations like [`MecNetwork::commit`].
    pub fn commit(&self, reservation: &mut ShardReservation, tag: u64) -> Result<(), ReserveError> {
        if reservation.state != ReservationState::Pending {
            return Err(ReserveError::NotPending { state: reservation.state });
        }
        reservation.state = ReservationState::Committed;
        for &(idx, _) in &reservation.debits {
            self.epochs.bump(idx);
        }
        if self.log_enabled && !reservation.debits.is_empty() {
            self.logs[reservation.home_shard]
                .lock()
                .expect("commit log poisoned")
                .push(CommitEntry { tag, debits: reservation.debits.clone() });
        }
        Ok(())
    }

    /// Clamped commit for the overcommit fallback: debit whatever each node
    /// still holds (up to the requested amount), log the *actual* amounts,
    /// and return them. Never fails; conservation holds because only what
    /// was really taken is recorded.
    pub fn commit_clamped(&self, debits: &[(NodeId, f64)], tag: u64) -> Vec<(usize, f64)> {
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(debits.len());
        for &(node, amount) in debits {
            assert!(amount >= 0.0 && amount.is_finite(), "debit amount must be >= 0");
            if amount == 0.0 {
                continue;
            }
            let idx = node.index();
            match merged.iter_mut().find(|(n, _)| *n == idx) {
                Some((_, a)) => *a += amount,
                None => merged.push((idx, amount)),
            }
        }
        merged.sort_unstable_by_key(|a| a.0);
        let actual: Vec<(usize, f64)> = merged
            .iter()
            .map(|&(idx, amount)| (idx, self.debit_clamped(idx, amount)))
            .filter(|&(_, taken)| taken > 0.0)
            .collect();
        for &(idx, _) in &actual {
            self.epochs.bump(idx);
        }
        if self.log_enabled && !actual.is_empty() {
            let home = actual
                .iter()
                .filter_map(|&(idx, _)| self.partition.shard_of(NodeId(idx)))
                .min()
                .unwrap_or(0);
            self.logs[home]
                .lock()
                .expect("commit log poisoned")
                .push(CommitEntry { tag, debits: actual.clone() });
        }
        actual
    }

    /// Phase two, failure path: credit every debit back. Rejects non-pending
    /// reservations — a double abort would double-release capacity.
    pub fn abort(&self, reservation: &mut ShardReservation) -> Result<(), ReserveError> {
        if reservation.state != ReservationState::Pending {
            return Err(ReserveError::NotPending { state: reservation.state });
        }
        for &(idx, amount) in &reservation.debits {
            self.credit(idx, amount);
        }
        reservation.state = ReservationState::Aborted;
        Ok(())
    }

    /// Drain every shard's commit log into one list (call quiescent; order
    /// across shards is arbitrary — sort by `tag` to linearize).
    pub fn drain_logs(&self) -> Vec<CommitEntry> {
        let mut all = Vec::new();
        for log in &self.logs {
            all.append(&mut log.lock().expect("commit log poisoned"));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    /// Path 0-1-2-3-4-5 with cloudlets at 0, 1 (left) and 4, 5 (right):
    /// at l=1 the two pairs never co-occur, so K=2 must split them cleanly.
    fn two_cluster_fixture() -> (MecNetwork, std::sync::Arc<NeighborhoodIndex>) {
        let mut g = crate::graph::Graph::new(6);
        for v in 0..5 {
            g.add_edge(NodeId(v), NodeId(v + 1));
        }
        let net = MecNetwork::new(g, vec![1000.0, 1000.0, 0.0, 0.0, 2000.0, 2000.0]);
        let nbhd = net.neighborhood_index(1);
        (net, nbhd)
    }

    #[test]
    fn commits_bump_touched_node_epochs_only() {
        let (net, nbhd) = two_cluster_fixture();
        let part = ShardPartition::build(&net, &nbhd, 2);
        let initial: Vec<f64> = (0..net.num_nodes()).map(|v| net.capacity(NodeId(v))).collect();
        let cap = ShardedCapacity::new(&net, &initial, part, false);
        assert_eq!(cap.epoch(0), 0);
        // Reserve alone must not bump (the debit is still revocable).
        let mut r = cap.try_reserve(&[(NodeId(0), 100.0), (NodeId(4), 50.0)]).unwrap();
        assert_eq!(cap.epoch(0), 0);
        assert_eq!(cap.epoch(4), 0);
        cap.commit(&mut r, 7).unwrap();
        assert_eq!(cap.epoch(0), 1, "commit bumps touched nodes");
        assert_eq!(cap.epoch(4), 1);
        assert_eq!(cap.epoch(1), 0, "untouched nodes keep their epoch");
        // Abort credits back without bumping.
        let mut r2 = cap.try_reserve(&[(NodeId(1), 10.0)]).unwrap();
        cap.abort(&mut r2).unwrap();
        assert_eq!(cap.epoch(1), 0, "aborted reservations leave epochs alone");
        // Clamped commits bump the nodes they actually debit.
        let taken = cap.commit_clamped(&[(NodeId(5), 10_000.0)], 8);
        assert_eq!(taken.len(), 1);
        assert_eq!(cap.epoch(5), 1);
    }

    #[test]
    fn partition_splits_cooccurrence_clusters() {
        let (net, nbhd) = two_cluster_fixture();
        let part = ShardPartition::build(&net, &nbhd, 2);
        assert_eq!(part.num_shards(), 2);
        let s0 = part.shard_of(NodeId(0)).unwrap();
        assert_eq!(part.shard_of(NodeId(1)), Some(s0), "left pair co-occurs");
        let s4 = part.shard_of(NodeId(4)).unwrap();
        assert_eq!(part.shard_of(NodeId(5)), Some(s4), "right pair co-occurs");
        assert_ne!(s0, s4, "clusters must land in different shards");
        assert_eq!(part.shard_of(NodeId(2)), None, "plain nodes are unowned");
        // Every footprint on this topology is single-shard at l=1.
        assert_eq!(part.local_fraction(&nbhd), 1.0);
        assert_eq!(part.classify(nbhd.cloudlets_within(NodeId(0))), FootprintClass::Local(s0));
        assert_eq!(
            part.classify(&[NodeId(0), NodeId(4)]),
            FootprintClass::Straddling,
            "a cross-cluster footprint straddles"
        );
        assert_eq!(part.classify(&[]), FootprintClass::Empty);
    }

    #[test]
    fn partition_covers_every_cloudlet_exactly_once() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let g = topology::grid(6, 6);
        let net = MecNetwork::with_random_cloudlets(g, 12, (4000.0, 8000.0), &mut rng);
        let nbhd = net.neighborhood_index(2);
        for k in [1, 2, 3, 5, 12, 40] {
            let part = ShardPartition::build(&net, &nbhd, k);
            assert!(part.num_shards() >= 1 && part.num_shards() <= k.min(12));
            let mut seen = std::collections::HashSet::new();
            for s in 0..part.num_shards() {
                for &c in part.members(s) {
                    assert_eq!(part.shard_of(c), Some(s));
                    assert!(seen.insert(c), "cloudlet {c} owned twice");
                }
            }
            assert_eq!(seen.len(), net.num_cloudlets(), "every cloudlet owned (k={k})");
        }
    }

    fn capacity_fixture(log: bool) -> (MecNetwork, ShardedCapacity) {
        let (net, nbhd) = two_cluster_fixture();
        let part = ShardPartition::build(&net, &nbhd, 2);
        let initial = net.residual_capacities(1.0);
        let cap = ShardedCapacity::new(&net, &initial, part, log);
        (net, cap)
    }

    #[test]
    fn sharded_reserve_commit_keeps_debits_and_logs_them() {
        let (_net, cap) = capacity_fixture(true);
        let mut r = cap
            .try_reserve(&[(NodeId(0), 300.0), (NodeId(1), 500.0), (NodeId(0), 100.0)])
            .expect("fits");
        assert_eq!(r.state(), ReservationState::Pending);
        assert!((r.total() - 900.0).abs() < 1e-12);
        assert_eq!(cap.residual(0), 600.0);
        assert_eq!(cap.residual(1), 500.0);
        cap.commit(&mut r, 7).expect("pending commits");
        assert_eq!(r.state(), ReservationState::Committed);
        assert_eq!(cap.residual(0), 600.0, "commit keeps the debits");
        let logs = cap.drain_logs();
        assert_eq!(logs, vec![CommitEntry { tag: 7, debits: vec![(0, 400.0), (1, 500.0)] }]);
        assert_eq!(
            cap.commit(&mut r, 8),
            Err(ReserveError::NotPending { state: ReservationState::Committed }),
            "double commit must be rejected"
        );
    }

    #[test]
    fn sharded_reserve_abort_round_trips_exactly() {
        let (net, cap) = capacity_fixture(false);
        let before = cap.snapshot();
        let mut r = cap.try_reserve(&[(NodeId(4), 700.0), (NodeId(5), 1250.0)]).expect("fits");
        assert_eq!(cap.residual(4), 1300.0);
        cap.abort(&mut r).expect("pending aborts");
        assert_eq!(cap.snapshot(), before, "abort must return every debit exactly");
        assert_eq!(r.state(), ReservationState::Aborted);
        assert_eq!(
            cap.abort(&mut r),
            Err(ReserveError::NotPending { state: ReservationState::Aborted }),
            "double abort must be rejected"
        );
        assert_eq!(cap.snapshot(), before);
        drop(net);
    }

    #[test]
    fn cross_shard_reserve_rolls_back_on_insufficiency() {
        // Nodes 1 (shard A) and 4 (shard B): the second debit fails, so the
        // first — in the *other* shard — must be credited back.
        let (_net, cap) = capacity_fixture(false);
        let before = cap.snapshot();
        let err = cap
            .try_reserve(&[(NodeId(1), 800.0), (NodeId(4), 2500.0)])
            .expect_err("2500 > 2000 must fail");
        match err {
            ReserveError::Insufficient { node, requested, available } => {
                assert_eq!(node, NodeId(4));
                assert!((requested - 2500.0).abs() < 1e-12);
                assert!((available - 2000.0).abs() < 1e-12);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(cap.snapshot(), before, "failed cross-shard reserve must roll back fully");
    }

    #[test]
    fn clamped_commit_takes_what_is_left_and_logs_actuals() {
        let (_net, cap) = capacity_fixture(true);
        let actual = cap.commit_clamped(&[(NodeId(0), 1600.0), (NodeId(1), 200.0)], 3);
        assert_eq!(actual, vec![(0, 1000.0), (1, 200.0)], "node 0 clamps at its residual");
        assert_eq!(cap.residual(0), 0.0);
        assert_eq!(cap.residual(1), 800.0);
        let logs = cap.drain_logs();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].debits, actual, "log records actual, not requested, amounts");
    }

    #[test]
    fn credit_beyond_capacity_panics() {
        let (_net, cap) = capacity_fixture(false);
        cap.try_debit(0, 100.0).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cap.credit(0, 200.0);
        }));
        assert!(r.is_err(), "over-credit must panic");
    }
}

//! Primary VNF placement (request admission).
//!
//! The augmentation problem assumes the request is *already admitted*: every
//! function in its SFC has a primary instance on some cloudlet. Two admission
//! strategies are provided:
//!
//! * [`random_placement`] — the strategy the paper's evaluation uses ("each
//!   VNF instance in the primary SFC deployed randomly into cloudlets").
//! * [`dag_placement`] — the auxiliary-DAG framework of Ma et al. (TPDS 2020)
//!   that the paper cites for admission (Section 4.1): one layer per chain
//!   position, one node per cloudlet, edge weights the negative log
//!   reliability of the inter-cloudlet path; a shortest `s→t` path is a
//!   maximum-reliability placement.

use crate::graph::NodeId;
use crate::network::MecNetwork;
use crate::request::SfcRequest;
use rand::Rng;

/// Where each primary instance of a request's chain lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimaryPlacement {
    /// `locations[i]` hosts the primary of the chain's `i`-th function.
    pub locations: Vec<NodeId>,
}

impl PrimaryPlacement {
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Distinct cloudlets used.
    pub fn distinct_cloudlets(&self) -> Vec<NodeId> {
        let mut v = self.locations.clone();
        v.sort();
        v.dedup();
        v
    }
}

/// Place each primary on an independently, uniformly random cloudlet.
///
/// Returns `None` if the network has no cloudlets.
pub fn random_placement<R: Rng + ?Sized>(
    net: &MecNetwork,
    request: &SfcRequest,
    rng: &mut R,
) -> Option<PrimaryPlacement> {
    let cloudlets = net.cloudlet_ids();
    if cloudlets.is_empty() {
        return None;
    }
    let locations =
        (0..request.len()).map(|_| cloudlets[rng.gen_range(0..cloudlets.len())]).collect();
    Some(PrimaryPlacement { locations })
}

/// Capacity-aware random placement: each primary goes to a uniformly random
/// cloudlet among those whose *remaining* capacity (in `residual`) fits the
/// function's demand; the chosen cloudlet's residual is debited immediately.
///
/// Returns `None` — and leaves `residual` exactly as it was — if any function
/// cannot be placed; admission is all-or-nothing.
pub fn random_placement_capacity_aware<R: Rng + ?Sized>(
    net: &MecNetwork,
    request: &SfcRequest,
    demands: &[f64],
    residual: &mut [f64],
    rng: &mut R,
) -> Option<PrimaryPlacement> {
    random_placement_capacity_aware_within(net, request, demands, net.cloudlet_ids(), residual, rng)
}

/// [`random_placement_capacity_aware`] restricted to an explicit candidate
/// set: each primary goes to a uniformly random member of `candidates` whose
/// remaining capacity fits, with the identical two-scan draw discipline (so
/// with `candidates == net.cloudlet_ids()` the RNG stream — and therefore the
/// placement — is bit-identical to the unrestricted version). This is the
/// locality-first admission of the relaxed commit path: candidates are the
/// request's `N_l^+(source)` cloudlet footprint, keeping every debit inside
/// the footprint's shard(s).
pub fn random_placement_capacity_aware_within<R: Rng + ?Sized>(
    net: &MecNetwork,
    request: &SfcRequest,
    demands: &[f64],
    candidates: &[NodeId],
    residual: &mut [f64],
    rng: &mut R,
) -> Option<PrimaryPlacement> {
    assert_eq!(demands.len(), request.len(), "one demand per chain position");
    assert_eq!(residual.len(), net.num_nodes());
    let cloudlets = candidates;
    let mut locations: Vec<NodeId> = Vec::with_capacity(request.len());
    for (&_f, &demand) in request.sfc.iter().zip(demands) {
        // Two scans instead of materializing the feasible list: count the
        // fitting cloudlets, draw the same uniform index the list-based
        // implementation would (an empty feasible set still consumes one
        // `gen_range(0..1)` draw — the RNG stream must not shift), then pick
        // the drawn cloudlet in a second scan.
        let fits = |c: &&NodeId| residual[c.index()] >= demand;
        let feasible = cloudlets.iter().filter(fits).count();
        let draw = rng.gen_range(0..feasible.max(1));
        let Some(&choice) = cloudlets.iter().filter(fits).nth(draw) else {
            // Roll back and reject.
            for (&done, &amount) in locations.iter().zip(demands) {
                residual[done.index()] += amount;
            }
            return None;
        };
        residual[choice.index()] -= demand;
        locations.push(choice);
    }
    Some(PrimaryPlacement { locations })
}

/// Release an admitted placement's primary demands back into `residual` —
/// the exact inverse of the debit [`random_placement_capacity_aware`]
/// performed, for when the request departs (or admission must be unwound).
/// Secondary demands are released separately by whoever committed them.
///
/// Consumes the placement: releasing the same admission twice would inflate
/// `residual` by the primaries' demands, and — whenever other requests hold
/// enough capacity on the affected cloudlets — the per-node ceiling check in
/// [`MecNetwork::release_capacity`] cannot see it, in *any* build profile.
/// Taking `PrimaryPlacement` by value turns that latent double-release into
/// a compile error instead of a debug-only (or silent) runtime hazard; the
/// per-node ceiling assert stays as the second line of defense.
pub fn release_placement(
    net: &MecNetwork,
    demands: &[f64],
    placement: PrimaryPlacement,
    residual: &mut [f64],
) {
    assert_eq!(demands.len(), placement.len(), "one demand per placed primary");
    for (&demand, &node) in demands.iter().zip(&placement.locations) {
        net.release_capacity(residual, node, demand);
    }
}

/// Maximum-reliability placement via the layered DAG of Ma et al.
///
/// `link_reliability` is the per-hop reliability of network links (1.0 makes
/// the DAG weights pure hop counts, i.e. a minimum-total-hops placement; VNF
/// reliabilities are cloudlet-independent in the paper's model so they do not
/// influence *where* primaries go).
///
/// Returns `None` if the network has no cloudlets or source/destination are
/// disconnected from every cloudlet.
pub fn dag_placement(
    net: &MecNetwork,
    request: &SfcRequest,
    link_reliability: f64,
) -> Option<PrimaryPlacement> {
    assert!(
        link_reliability > 0.0 && link_reliability <= 1.0,
        "link reliability must be in (0, 1]"
    );
    let cloudlets = net.cloudlets();
    if cloudlets.is_empty() || request.is_empty() {
        return None;
    }
    let g = net.graph();
    let per_hop_cost = -link_reliability.ln(); // >= 0

    // Hop distances from source, destination, and every cloudlet.
    let from_source = g.hop_distances(request.source);
    let from_dest = g.hop_distances(request.destination);
    let from_cloudlet: Vec<Vec<u32>> = cloudlets.iter().map(|&c| g.hop_distances(c)).collect();

    let hops = |dists: &Vec<u32>, v: NodeId| -> Option<f64> {
        let d = dists[v.index()];
        (d != u32::MAX).then_some(d as f64)
    };

    // DP over layers: dist[i][k] = min cost to place functions 0..=i with the
    // i-th on cloudlets[k].
    let l = request.len();
    let k = cloudlets.len();
    let mut dist = vec![vec![f64::INFINITY; k]; l];
    let mut parent = vec![vec![usize::MAX; k]; l];
    for (ci, &c) in cloudlets.iter().enumerate() {
        if let Some(h) = hops(&from_source, c) {
            dist[0][ci] = h * per_hop_cost;
        }
    }
    for i in 1..l {
        for (cj, _) in cloudlets.iter().enumerate() {
            for ci in 0..k {
                if dist[i - 1][ci].is_finite() {
                    if let Some(h) = hops(&from_cloudlet[ci], cloudlets[cj]) {
                        let cand = dist[i - 1][ci] + h * per_hop_cost;
                        if cand < dist[i][cj] {
                            dist[i][cj] = cand;
                            parent[i][cj] = ci;
                        }
                    }
                }
            }
        }
    }
    // Close with the destination leg.
    let mut best: Option<(f64, usize)> = None;
    for ci in 0..k {
        if dist[l - 1][ci].is_finite() {
            if let Some(h) = hops(&from_dest, cloudlets[ci]) {
                let total = dist[l - 1][ci] + h * per_hop_cost;
                if best.is_none_or(|(b, _)| total < b) {
                    best = Some((total, ci));
                }
            }
        }
    }
    let (_, mut ci) = best?;
    let mut locations = vec![NodeId(0); l];
    for i in (0..l).rev() {
        locations[i] = cloudlets[ci];
        if i > 0 {
            ci = parent[i][ci];
            if ci == usize::MAX {
                return None;
            }
        }
    }
    Some(PrimaryPlacement { locations })
}

/// End-to-end path reliability of a placement:
/// `link_reliability^(total hops source -> f_1 -> … -> f_L -> destination)`.
pub fn path_reliability(
    net: &MecNetwork,
    request: &SfcRequest,
    placement: &PrimaryPlacement,
    link_reliability: f64,
) -> Option<f64> {
    let g = net.graph();
    let mut total_hops = 0u32;
    let mut prev = request.source;
    for &loc in placement.locations.iter().chain(std::iter::once(&request.destination)) {
        total_hops += g.hop_distance(prev, loc)?;
        prev = loc;
    }
    Some(link_reliability.powi(total_hops as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::vnf::{VnfCatalog, VnfType, VnfTypeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_net() -> MecNetwork {
        // 0 - 1 - 2 - 3 - 4, cloudlets at 1 and 3.
        let mut g = Graph::new(5);
        for i in 0..4 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        MecNetwork::new(g, vec![0.0, 5000.0, 0.0, 5000.0, 0.0])
    }

    fn two_fn_request() -> SfcRequest {
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "a".into(), demand_mhz: 100.0, reliability: 0.9 });
        cat.add(VnfType { name: "b".into(), demand_mhz: 100.0, reliability: 0.9 });
        SfcRequest::new(1, vec![VnfTypeId(0), VnfTypeId(1)], 0.99, NodeId(0), NodeId(4))
    }

    #[test]
    fn random_placement_uses_only_cloudlets() {
        let net = line_net();
        let req = two_fn_request();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let p = random_placement(&net, &req, &mut rng).unwrap();
            assert_eq!(p.len(), 2);
            assert!(p.locations.iter().all(|&v| net.is_cloudlet(v)));
        }
    }

    #[test]
    fn random_placement_without_cloudlets_is_none() {
        let g = Graph::new(3);
        let net = MecNetwork::new(g, vec![0.0; 3]);
        let req = two_fn_request();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(random_placement(&net, &req, &mut rng).is_none());
    }

    #[test]
    fn capacity_aware_placement_debits_and_rolls_back() {
        let net = line_net(); // cloudlets at 1 (5000) and 3 (5000)
        let req = two_fn_request();
        let mut rng = StdRng::seed_from_u64(3);
        let demands = [3000.0, 3000.0];
        let mut residual = vec![0.0, 5000.0, 0.0, 5000.0, 0.0];
        let p = random_placement_capacity_aware(&net, &req, &demands, &mut residual, &mut rng)
            .expect("fits: one instance per cloudlet");
        // Each cloudlet can hold exactly one 3000-MHz instance.
        assert_ne!(p.locations[0], p.locations[1]);
        assert!((residual[1] - 2000.0).abs() < 1e-9);
        assert!((residual[3] - 2000.0).abs() < 1e-9);
        // A third identical request cannot fit; residual must be untouched.
        let before = residual.clone();
        let q = random_placement_capacity_aware(&net, &req, &demands, &mut residual, &mut rng);
        assert!(q.is_none());
        assert_eq!(residual, before);
    }

    #[test]
    fn admit_then_release_round_trips_residual_exactly() {
        let net = line_net();
        let req = two_fn_request();
        let mut rng = StdRng::seed_from_u64(7);
        let demands = [1250.0, 750.0];
        let mut residual = vec![0.0, 5000.0, 0.0, 5000.0, 0.0];
        let before = residual.clone();
        let p = random_placement_capacity_aware(&net, &req, &demands, &mut residual, &mut rng)
            .expect("plenty of room");
        assert_ne!(residual, before, "admission must debit");
        release_placement(&net, &demands, p, &mut residual);
        assert_eq!(residual, before, "admit -> release must round-trip exactly");
        // Repeatedly admitting and releasing never drifts. `release_placement`
        // consumes the placement, so a double release of the same admission no
        // longer compiles — each round trip needs a fresh admission.
        for _ in 0..50 {
            let p = random_placement_capacity_aware(&net, &req, &demands, &mut residual, &mut rng)
                .unwrap();
            release_placement(&net, &demands, p, &mut residual);
        }
        assert_eq!(residual, before);
    }

    #[test]
    #[should_panic(expected = "above its capacity")]
    fn explicit_double_release_trips_capacity_ceiling() {
        // Cloning a placement to release it twice is the loud opt-out the
        // by-value signature leaves open; with no other capacity holders on
        // the node, the ceiling check catches it in release builds too.
        let net = line_net();
        let req = two_fn_request();
        let mut rng = StdRng::seed_from_u64(11);
        let demands = [1000.0, 1000.0];
        let mut residual = vec![0.0, 5000.0, 0.0, 5000.0, 0.0];
        let p = random_placement_capacity_aware(&net, &req, &demands, &mut residual, &mut rng)
            .expect("fits");
        release_placement(&net, &demands, p.clone(), &mut residual);
        release_placement(&net, &demands, p, &mut residual);
    }

    #[test]
    fn capacity_aware_rejects_when_empty() {
        let net = line_net();
        let req = two_fn_request();
        let mut rng = StdRng::seed_from_u64(3);
        let mut residual = vec![0.0; 5];
        assert!(random_placement_capacity_aware(
            &net,
            &req,
            &[100.0, 100.0],
            &mut residual,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn dag_placement_minimizes_hops() {
        let net = line_net();
        let req = two_fn_request();
        // Source 0, dest 4: the optimum is 4 total hops, achieved by both
        // (f1@1, f2@3) and (f1@1, f2@1); anything through f1@3 costs >= 6.
        let p = dag_placement(&net, &req, 0.99).unwrap();
        let r = path_reliability(&net, &req, &p, 0.99).unwrap();
        assert!((r - 0.99f64.powi(4)).abs() < 1e-12, "placement {:?} not 4 hops", p.locations);
        assert_eq!(p.locations[0], NodeId(1));
    }

    #[test]
    fn dag_placement_reuses_cloudlet_for_colocated_chain() {
        // Source and destination both adjacent to cloudlet 1.
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let net = MecNetwork::new(g, vec![0.0, 4000.0, 0.0]);
        let mut req = two_fn_request();
        req.source = NodeId(0);
        req.destination = NodeId(2);
        let p = dag_placement(&net, &req, 0.9).unwrap();
        assert_eq!(p.locations, vec![NodeId(1), NodeId(1)]);
        assert_eq!(p.distinct_cloudlets(), vec![NodeId(1)]);
    }

    #[test]
    fn dag_placement_handles_disconnection() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        // Node 2 (cloudlet) and 3 are a separate component.
        g.add_edge(NodeId(2), NodeId(3));
        let net = MecNetwork::new(g, vec![0.0, 0.0, 4000.0, 0.0]);
        let mut req = two_fn_request();
        req.source = NodeId(0);
        req.destination = NodeId(1);
        assert!(dag_placement(&net, &req, 1.0).is_none());
    }

    #[test]
    fn perfect_links_make_any_path_reliability_one() {
        let net = line_net();
        let req = two_fn_request();
        let p = dag_placement(&net, &req, 1.0).unwrap();
        assert_eq!(path_reliability(&net, &req, &p, 1.0), Some(1.0));
    }
}

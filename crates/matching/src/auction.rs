//! Bertsekas' auction algorithm for the assignment problem.
//!
//! A third, independently-derived solver (after the flow-based matcher and
//! the Hungarian algorithm) used to cross-validate the others: persons bid
//! for objects, prices rise, and ε-scaling drives the assignment to within
//! `n·ε` of optimal — with `ε < 1/n` on integer-scaled benefits the result
//! is exactly optimal.
//!
//! This implementation maximizes total *benefit* on a dense matrix; to solve
//! a min-cost assignment, negate the costs (see [`solve_min_cost`]).

/// An assignment of each person (row) to a distinct object (column).
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionResult {
    /// `object_of[i]` is the object assigned to person `i`.
    pub object_of: Vec<usize>,
    /// Total benefit of the assignment.
    pub benefit: f64,
    /// Bidding rounds executed.
    pub rounds: usize,
}

/// Maximize `Σ benefit[i][object_of(i)]` over perfect assignments of `n`
/// persons to `n` objects (square matrix, finite entries).
///
/// Runs ε-scaling: ε starts at `max|benefit| / 2` and halves until below
/// `epsilon_final`, re-running the auction each phase with prices carried
/// over. For exact optima on arbitrary `f64` data, pass an `epsilon_final`
/// below the smallest meaningful benefit difference divided by `n`.
pub fn solve_max_benefit(benefit: &[Vec<f64>], epsilon_final: f64) -> AuctionResult {
    let n = benefit.len();
    assert!(n > 0, "empty problem");
    assert!(benefit.iter().all(|r| r.len() == n), "matrix must be square");
    assert!(epsilon_final > 0.0);
    let max_abs = benefit.iter().flat_map(|r| r.iter()).fold(0.0f64, |m, &x| m.max(x.abs()));
    let mut prices = vec![0.0f64; n];
    let mut assignment: Vec<Option<usize>> = vec![None; n]; // person -> object
    let mut owner: Vec<Option<usize>> = vec![None; n]; // object -> person
    let mut eps = (max_abs / 2.0).max(epsilon_final);
    let mut rounds = 0usize;
    loop {
        // Reset assignment each phase (prices persist — the point of scaling).
        assignment.fill(None);
        owner.fill(None);
        let mut unassigned: Vec<usize> = (0..n).collect();
        while let Some(person) = unassigned.pop() {
            rounds += 1;
            // Best and second-best net value.
            let mut best = f64::NEG_INFINITY;
            let mut second = f64::NEG_INFINITY;
            let mut best_obj = 0usize;
            for (j, &p) in prices.iter().enumerate() {
                let v = benefit[person][j] - p;
                if v > best {
                    second = best;
                    best = v;
                    best_obj = j;
                } else if v > second {
                    second = v;
                }
            }
            // Bid: raise the price by the bid increment.
            let increment = if second.is_finite() { best - second + eps } else { eps };
            prices[best_obj] += increment;
            if let Some(evicted) = owner[best_obj].replace(person) {
                assignment[evicted] = None;
                unassigned.push(evicted);
            }
            assignment[person] = Some(best_obj);
        }
        if eps <= epsilon_final {
            break;
        }
        eps = (eps / 2.0).max(epsilon_final * 0.999_999);
    }
    let object_of: Vec<usize> =
        assignment.into_iter().map(|o| o.expect("auction terminates assigned")).collect();
    let total = object_of.iter().enumerate().map(|(i, &j)| benefit[i][j]).sum();
    AuctionResult { object_of, benefit: total, rounds }
}

/// Minimize total cost by auctioning negated costs.
pub fn solve_min_cost(cost: &[Vec<f64>], epsilon_final: f64) -> AuctionResult {
    let negated: Vec<Vec<f64>> = cost.iter().map(|r| r.iter().map(|&c| -c).collect()).collect();
    let mut res = solve_max_benefit(&negated, epsilon_final);
    res.benefit = -res.benefit;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian;

    #[test]
    fn three_by_three_exact() {
        let cost = vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]];
        let res = solve_min_cost(&cost, 1e-4);
        assert!((res.benefit - 5.0).abs() < 1e-6, "cost {}", res.benefit);
        assert_eq!(res.object_of, vec![1, 0, 2]);
    }

    #[test]
    fn matches_hungarian_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for n in [2usize, 4, 7] {
            for _ in 0..5 {
                let cost: Vec<Vec<f64>> =
                    (0..n).map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect()).collect();
                let auction = solve_min_cost(&cost, 1e-7 / n as f64);
                let hung = hungarian::solve(&cost).unwrap();
                assert!(
                    (auction.benefit - hung.cost).abs() < 1e-4,
                    "n={n}: auction {} vs hungarian {}",
                    auction.benefit,
                    hung.cost
                );
                // The assignment is a permutation.
                let mut seen = vec![false; n];
                for &j in &auction.object_of {
                    assert!(!seen[j], "object assigned twice");
                    seen[j] = true;
                }
            }
        }
    }

    #[test]
    fn single_person() {
        let res = solve_max_benefit(&[vec![7.0]], 1e-6);
        assert_eq!(res.object_of, vec![0]);
        assert!((res.benefit - 7.0).abs() < 1e-9);
    }

    #[test]
    fn identical_benefits_any_permutation() {
        let b = vec![vec![1.0; 3]; 3];
        let res = solve_max_benefit(&b, 1e-6);
        assert!((res.benefit - 3.0).abs() < 1e-9);
    }
}

//! Multi-request processing — the system view the paper's single-request
//! formulation plugs into.
//!
//! The paper's Section 4.1 sketches the admission framework and then augments
//! one admitted request at a time; its evaluation generates 1,000 independent
//! requests. This module implements the natural end-to-end pipeline over a
//! *shared* network: requests arrive in sequence, each is admitted (primaries
//! consume capacity, all-or-nothing, rejection when nothing fits), then its
//! reliability is augmented with any of the paper's algorithms using the
//! network's *current* residual capacity, which the placed secondaries then
//! consume. This is the "extension" regime every related work (Li et al.
//! 2019/2020, Lin et al. 2020) evaluates, and it exposes the interplay the
//! single-request experiments cannot: early requests eat the capacity that
//! late requests would have used for backups.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mecnet::admission::{random_placement_capacity_aware, PrimaryPlacement};
use mecnet::graph::NodeId;
use mecnet::neighborhood::NeighborhoodIndex;
use mecnet::network::{MecNetwork, NodeEpochs};
use mecnet::request::SfcRequest;
use mecnet::vnf::VnfCatalog;
use obs::{FlightRecorder, MetricsInterval, MetricsSnapshot, Recorder, ShardedMetrics};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::heuristic::HeuristicConfig;
use crate::ilp::IlpConfig;
use crate::instance::AugmentationInstance;
use crate::plancache::{PlanCache, PlanEntry, PlanKey, Probe};
use crate::randomized::RandomizedConfig;
use crate::scratch::SolveScratch;
use crate::solution::Outcome;
use crate::{greedy, heuristic, ilp, randomized, reliability};

/// Which augmentation algorithm the stream runs per admitted request.
#[derive(Debug, Clone)]
pub enum Algorithm {
    Ilp(IlpConfig),
    Randomized(RandomizedConfig),
    Heuristic(HeuristicConfig),
    Greedy(crate::greedy::GreedyConfig),
}

impl Default for Algorithm {
    fn default() -> Self {
        Algorithm::Heuristic(HeuristicConfig::default())
    }
}

impl Algorithm {
    /// Display name of the configured algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Ilp(_) => "ILP",
            Algorithm::Randomized(_) => "Randomized",
            Algorithm::Heuristic(_) => "Heuristic",
            Algorithm::Greedy(_) => "Greedy",
        }
    }

    /// Run the configured algorithm on one instance with telemetry — the
    /// single dispatch point every multi-request driver (the stream pipeline,
    /// the failure/recovery simulator) shares. `rng` only feeds the
    /// randomized algorithm; the others ignore it. Solver errors (ILP/LP
    /// infeasibility, which well-formed instances never produce) panic, as
    /// the callers have no meaningful recovery.
    pub fn solve_traced<R: Rng + ?Sized>(
        &self,
        inst: &AugmentationInstance,
        rng: &mut R,
        rec: &mut Recorder,
    ) -> Outcome {
        self.solve_scratch(inst, rng, rec, &mut SolveScratch::new())
    }

    /// [`Algorithm::solve_traced`] on caller-owned scratch buffers — what the
    /// streaming drivers use so the per-request steady state allocates
    /// nothing. The ILP reuses the scratch's LP workspace (factorization and
    /// eta-file buffers) across requests; its branch-and-bound *state* is
    /// still per-solve.
    pub fn solve_scratch<R: Rng + ?Sized>(
        &self,
        inst: &AugmentationInstance,
        rng: &mut R,
        rec: &mut Recorder,
        scratch: &mut SolveScratch,
    ) -> Outcome {
        match self {
            Algorithm::Ilp(c) => ilp::solve_scratch(inst, c, rec, scratch).expect("ILP solve"),
            Algorithm::Randomized(c) => {
                randomized::solve_scratch(inst, c, rng, rec, scratch).expect("LP solve")
            }
            Algorithm::Heuristic(c) => heuristic::solve_scratch(inst, c, rec, scratch),
            Algorithm::Greedy(c) => greedy::solve_scratch(inst, c, rec, scratch),
        }
    }
}

/// Stream-processing knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Locality radius for secondaries.
    pub l: u32,
    pub algorithm: Algorithm,
    /// Fraction of total capacity initially available (1.0 = empty network).
    pub initial_capacity_fraction: f64,
    /// Share backup instances across requests (Qu et al. 2018-style
    /// extension): an idle instance of type `f` already deployed within
    /// `N_l^+` of a later request's primary also protects that request, so
    /// its marginal backups start further down the diminishing-returns
    /// ladder. `false` reproduces the paper's no-sharing model.
    pub share_backups: bool,
    /// Admission plan-cache capacity in entries; `0` (the default) disables
    /// the cache and keeps the deterministic byte-identity path untouched.
    /// When enabled, the seeded engines memoize solved plans keyed by
    /// `(source, chain signature, threshold bucket, l)` and re-validate every
    /// hit against live residuals (see [`crate::plancache`]); cached mode is
    /// oracle-checked, not byte-identical. Incompatible with `share_backups`
    /// (a cached plan's reliability depends on neighbors' instances there).
    /// The legacy shared-RNG [`process_stream`] ignores this knob — skipping
    /// a request's draws would shift every later request's randomness.
    pub plan_cache: usize,
    /// Differential-oracle hook (test builds of the property suite): on every
    /// cache hit, certify the entry from first principles — cost, reliability
    /// and debits recomputed bit-exactly from its stored plan — and re-run
    /// the fresh solve it would skip as a cross-witness. Expensive; leave off
    /// outside the oracle tests.
    #[doc(hidden)]
    pub plan_cache_oracle: bool,
    /// Telemetry granularity: per-request events (the byte-identity-checked
    /// default) or bounded windowed summaries.
    pub metrics: MetricsMode,
    /// Attach per-thread flight-recorder rings, dumped to this directory on
    /// panic or commit hard-error.
    pub flight: Option<FlightSpec>,
    /// Testing hook: trigger a commit hard-error (flight dump + panic) when
    /// request position `k` reaches the commit step. Drives the
    /// flight-recorder smoke test; leave `None` in real runs.
    pub inject_commit_hard_error_at: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            l: 1,
            algorithm: Algorithm::default(),
            initial_capacity_fraction: 1.0,
            share_backups: false,
            plan_cache: 0,
            plan_cache_oracle: false,
            metrics: MetricsMode::Full,
            flight: None,
            inject_commit_hard_error_at: None,
        }
    }
}

/// Telemetry granularity for the streaming pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum MetricsMode {
    /// One `stream.request` event per request plus traced solver events —
    /// unbounded output, byte-identical across worker counts (the mode the
    /// equivalence tests check).
    #[default]
    Full,
    /// No per-request events: one `stream.window` summary per interval (plus
    /// the final partial window), so a 10^6-request run emits O(windows)
    /// JSONL. Solver *counters* still accumulate (B&B pivots per window);
    /// solver events are dropped.
    Windowed(MetricsInterval),
}

/// Flight-recorder wiring for the stream pipeline: each thread keeps a ring
/// of its last `capacity` raw events and dumps it to `dir` on failure
/// (`flight-commit.jsonl` for the coordinator, `flight-worker<i>.jsonl` for
/// workers).
#[derive(Debug, Clone)]
pub struct FlightSpec {
    pub dir: PathBuf,
    pub capacity: usize,
}

impl FlightSpec {
    pub fn new(dir: PathBuf) -> FlightSpec {
        FlightSpec { dir, capacity: 256 }
    }
}

/// Per-request record of what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    pub id: usize,
    pub admitted: bool,
    /// Reliability of the bare primaries (admitted requests only).
    pub base_reliability: f64,
    /// Reliability after augmentation.
    pub achieved_reliability: f64,
    pub met_expectation: bool,
    pub secondaries: usize,
}

/// Aggregate outcome of a processed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    pub records: Vec<RequestRecord>,
    /// Residual capacity per node after the whole stream.
    pub final_residual: Vec<f64>,
}

impl StreamOutcome {
    pub fn admitted(&self) -> usize {
        self.records.iter().filter(|r| r.admitted).count()
    }

    pub fn rejected(&self) -> usize {
        self.records.len() - self.admitted()
    }

    /// Mean achieved reliability over admitted requests (`None` if none).
    pub fn mean_reliability(&self) -> Option<f64> {
        let adm: Vec<f64> =
            self.records.iter().filter(|r| r.admitted).map(|r| r.achieved_reliability).collect();
        (!adm.is_empty()).then(|| adm.iter().sum::<f64>() / adm.len() as f64)
    }

    /// Fraction of admitted requests that reached their expectation.
    pub fn expectation_rate(&self) -> Option<f64> {
        let adm: Vec<bool> =
            self.records.iter().filter(|r| r.admitted).map(|r| r.met_expectation).collect();
        (!adm.is_empty()).then(|| adm.iter().filter(|&&m| m).count() as f64 / adm.len() as f64)
    }
}

/// Process a request stream against a shared network.
///
/// Each request is admitted with capacity-aware random primary placement
/// (all-or-nothing), augmented with the configured algorithm against the
/// current residual capacities, and its secondaries' consumption is committed
/// before the next request is considered. The randomized algorithm's
/// overcommit is clamped at zero residual (and shows up as unmet
/// expectations later in the stream, not as negative capacity).
pub fn process_stream<R: Rng + ?Sized>(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: &[SfcRequest],
    cfg: &StreamConfig,
    rng: &mut R,
) -> StreamOutcome {
    process_stream_traced(network, catalog, requests, cfg, rng, &mut Recorder::noop())
}

/// [`process_stream`] with telemetry: emits exactly one `stream.request`
/// event per request — admitted or rejected (with a reason), the algorithm's
/// runtime, the secondaries placed and a residual-capacity snapshot after the
/// request was committed. The per-request solver also runs traced, so its
/// events interleave in arrival order.
pub fn process_stream_traced<R: Rng + ?Sized>(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: &[SfcRequest],
    cfg: &StreamConfig,
    rng: &mut R,
    rec: &mut Recorder,
) -> StreamOutcome {
    assert!(
        (0.0..=1.0).contains(&cfg.initial_capacity_fraction),
        "capacity fraction must be in [0, 1]"
    );
    let mut residual = network.residual_capacities(cfg.initial_capacity_fraction);
    let mut records = Vec::with_capacity(requests.len());
    let nbhd = network.neighborhood_index(cfg.l);
    let mut scratch = SolveScratch::new();
    // Deployed instances per (VNF type, node) — primaries and secondaries of
    // all previously admitted requests; consulted when sharing is on.
    let mut deployed: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    for req in requests {
        let demands: Vec<f64> = req.sfc.iter().map(|&f| catalog.demand(f)).collect();
        let Some(placement) =
            random_placement_capacity_aware(network, req, &demands, &mut residual, rng)
        else {
            rec.count("stream.rejected", 1);
            rec.emit_with(|| {
                stream_request_event(req.id, &residual)
                    .with("admitted", false)
                    .with("reason", "no_primary_placement")
            });
            records.push(RequestRecord {
                id: req.id,
                admitted: false,
                base_reliability: 0.0,
                achieved_reliability: 0.0,
                met_expectation: false,
                secondaries: 0,
            });
            continue;
        };
        let mut inst = AugmentationInstance::new_with_index(
            network,
            catalog,
            req,
            &placement.locations,
            &residual,
            &nbhd,
        );
        if cfg.share_backups {
            for (i, f) in inst.functions.iter_mut().enumerate() {
                let type_idx = req.sfc[i].index();
                // Deployed instances only live on cloudlets, so scanning the
                // index's cloudlet slice equals scanning the whole BFS ball.
                let shared: usize = nbhd
                    .cloudlets_within(f.primary)
                    .iter()
                    .filter_map(|u| deployed.get(&(type_idx, u.index())))
                    .sum();
                f.existing_backups = shared;
            }
        }
        let solve_started = Instant::now();
        let outcome: Outcome = cfg.algorithm.solve_scratch(&inst, rng, rec, &mut scratch);
        let solve_elapsed = solve_started.elapsed();
        rec.record_time("stream.solve", solve_elapsed);
        rec.time_sample("stream.solve", solve_elapsed);
        // Commit the secondaries' consumption (clamped at zero: the
        // randomized algorithm may overcommit).
        for (bin_idx, &load) in outcome.augmentation.bin_loads(&inst).iter().enumerate() {
            let node = inst.bins[bin_idx].node.index();
            residual[node] = (residual[node] - load).max(0.0);
        }
        // Record deployed instances for later sharing.
        for (i, &loc) in req.sfc.iter().zip(&placement.locations) {
            *deployed.entry((i.index(), loc.index())).or_insert(0) += 1;
        }
        for (func, row) in (0..inst.chain_len()).map(|f| (f, outcome.augmentation.placements_of(f)))
        {
            let type_idx = req.sfc[func].index();
            for &(bin_idx, count) in row {
                let node = inst.bins[bin_idx].node.index();
                *deployed.entry((type_idx, node)).or_insert(0) += count;
            }
        }
        rec.count("stream.admitted", 1);
        rec.emit_with(|| {
            stream_request_event(req.id, &residual)
                .with("admitted", true)
                .with("base_reliability", outcome.metrics.base_reliability)
                .with("achieved_reliability", outcome.metrics.reliability)
                .with("met_expectation", outcome.metrics.met_expectation)
                .with("secondaries", outcome.metrics.total_secondaries)
                .with("solve_s", solve_elapsed.as_secs_f64())
        });
        records.push(RequestRecord {
            id: req.id,
            admitted: true,
            base_reliability: outcome.metrics.base_reliability,
            achieved_reliability: outcome.metrics.reliability,
            met_expectation: outcome.metrics.met_expectation,
            secondaries: outcome.metrics.total_secondaries,
        });
    }
    StreamOutcome { records, final_residual: residual }
}

// ---------------------------------------------------------------------------
// Seeded pipeline — the machinery shared by the seeded sequential driver and
// the parallel engine in [`crate::parallel`].
//
// The legacy `process_stream` threads ONE caller-owned RNG through the
// admission and solve of every request, which serializes the whole stream by
// construction. The seeded pipeline instead derives an independent admission
// RNG and solve RNG per request position `k` from a base seed, so any
// request's computation is a pure function of (network state it sees, seed,
// k) — exactly what speculative execution needs to replay bit-identically.
// ---------------------------------------------------------------------------

/// Domain-separation salts for the per-request derived RNG streams.
pub(crate) const ADMIT_SALT: u64 = 0x0041_444d_4954; // "ADMIT"
pub(crate) const SOLVE_SALT: u64 = 0x0053_4f4c_5645; // "SOLVE"

/// splitmix64 finalizer — mixes the (seed, k, salt) triple into a seed with
/// good avalanche so neighboring request positions get unrelated streams.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The RNG for request position `k`'s admission (`ADMIT_SALT`) or solve
/// (`SOLVE_SALT`) step. Independent per (seed, k, salt), so a worker can
/// compute request `k` without knowing how much randomness requests `0..k`
/// consumed.
pub(crate) fn request_rng(seed: u64, k: usize, salt: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(splitmix64(seed ^ salt).wrapping_add(k as u64)))
}

/// Index registry for the pipeline's sharded metrics ([`ShardedMetrics`]):
/// recording is an array index plus a relaxed atomic op, so these run on the
/// hot path in every mode. Shard 0 belongs to the coordinator (the only
/// writer of the authoritative per-request counts); shard `w + 1` belongs to
/// worker `w`.
pub mod pipeline_metrics {
    pub const COUNTERS: &[&str] = &[
        "requests",
        "admitted",
        "rejected.no_primary_placement",
        "speculation.hits",
        "speculation.conflicts",
        "commit.overcommit_clamped",
        "solves",
        "plancache.hits",
        "plancache.epoch_skips",
        "plancache.reject_hits",
        "plancache.misses",
        "plancache.validation_failures",
        "plancache.insertions",
        "plancache.evictions",
    ];
    pub const C_REQUESTS: usize = 0;
    pub const C_ADMITTED: usize = 1;
    pub const C_REJECTED: usize = 2;
    pub const C_SPEC_HITS: usize = 3;
    pub const C_CONFLICTS: usize = 4;
    pub const C_OVERCOMMIT: usize = 5;
    /// Shard 0: inline (conflict-induced) re-solves; worker shards:
    /// speculative solves.
    pub const C_SOLVES: usize = 6;
    /// Plan-cache hit: a cached plan revalidated against live residuals and
    /// was applied in place of admission + solve.
    pub const C_PC_HITS: usize = 7;
    /// Subset of hits whose epoch stamps were all unchanged — even the
    /// feasibility re-walk was skipped.
    pub const C_PC_EPOCH_SKIPS: usize = 8;
    /// Request rejected by the monotone max-residual watermark without
    /// scanning candidates.
    pub const C_PC_REJECT_HITS: usize = 9;
    /// Cache probes that found no usable plan.
    pub const C_PC_MISSES: usize = 10;
    /// Misses where a candidate existed but failed re-validation.
    pub const C_PC_VALIDATION_FAILURES: usize = 11;
    /// Entries written after fresh solves.
    pub const C_PC_INSERTIONS: usize = 12;
    /// Insertions that displaced a live entry with a different key.
    pub const C_PC_EVICTIONS: usize = 13;

    pub const HISTS: &[&str] = &[
        "solve_ns",
        "reserve_ns",
        "commit_ns",
        "abort_ns",
        "commit_wait_ns",
        "coordinator_recv_wait_ns",
        "job_wait_ns",
    ];
    /// Shard 0: authoritative per-request solve time (speculated or inline);
    /// worker shards: that worker's speculative solve time.
    pub const H_SOLVE_NS: usize = 0;
    /// Two-phase `try_reserve` latency at commit (shard 0).
    pub const H_RESERVE_NS: usize = 1;
    /// Two-phase `commit` latency (shard 0).
    pub const H_COMMIT_NS: usize = 2;
    /// Two-phase `abort` latency. Registered for schema completeness: the
    /// admission commit path never aborts (a failed reserve has nothing to
    /// abort), so this histogram stays empty.
    pub const H_ABORT_NS: usize = 3;
    /// Per worker: lag between a speculation finishing and its commit turn
    /// arriving — the time results sat waiting on the sequencer.
    pub const H_COMMIT_WAIT_NS: usize = 4;
    /// Shard 0: coordinator blocked on the result channel with commits
    /// pending — the "waiting on workers" share of coordinator time.
    pub const H_COORD_WAIT_NS: usize = 5;
    /// Per worker: blocked on the job channel — the idle share of worker
    /// time.
    pub const H_JOB_WAIT_NS: usize = 6;
}

/// Coordinator-side flight ring plus its dump destination.
pub(crate) struct FlightState {
    pub ring: FlightRecorder,
    pub path: PathBuf,
}

/// Windowed-aggregation cursor: per-window bases to diff snapshots against.
struct WindowTracker {
    interval: MetricsInterval,
    index: u64,
    window_started: Instant,
    /// Shard-0 `requests` counter at window start, cached as a plain integer
    /// so the per-request boundary check is one atomic load + compare (no
    /// name-keyed snapshot lookup on the hot path).
    base_requests: u64,
    /// Coordinator shard at window start (authoritative counts, solve/commit
    /// latencies).
    base0: MetricsSnapshot,
    /// All shards merged at window start (conflicts, worker activity).
    base_all: MetricsSnapshot,
    /// Main-recorder counters at window start (solver aggregates: B&B nodes,
    /// pivots) — diffed to report per-window solver effort.
    solver_base: Vec<(String, u64)>,
}

/// Observability state threaded through the commit path: the sharded metrics
/// (always on — recording is a couple of relaxed atomics), the metrics mode,
/// and the optional window tracker and coordinator flight ring.
pub(crate) struct StreamObs {
    pub metrics: Arc<ShardedMetrics>,
    /// Per-request events and legacy per-request recorder aggregates
    /// (`MetricsMode::Full` — the byte-identity path).
    pub full: bool,
    window: Option<WindowTracker>,
    pub flight: Option<FlightState>,
    pub inject_at: Option<usize>,
    /// Configured plan-cache capacity (0 = off); gates the cache columns in
    /// windowed events and the `plan_cache` block of the observation.
    plan_cache_capacity: usize,
}

impl StreamObs {
    fn new(cfg: &StreamConfig, shards: usize) -> StreamObs {
        let metrics = Arc::new(ShardedMetrics::new(
            pipeline_metrics::COUNTERS,
            pipeline_metrics::HISTS,
            shards,
        ));
        let window = match cfg.metrics {
            MetricsMode::Full => None,
            MetricsMode::Windowed(interval) => Some(WindowTracker {
                interval,
                index: 0,
                window_started: Instant::now(),
                base_requests: 0,
                base0: metrics.shard_snapshot(0),
                base_all: metrics.snapshot(),
                solver_base: Vec::new(),
            }),
        };
        StreamObs {
            metrics,
            full: matches!(cfg.metrics, MetricsMode::Full),
            window,
            flight: cfg.flight.as_ref().map(|spec| FlightState {
                ring: FlightRecorder::new(spec.capacity),
                path: spec.dir.join("flight-commit.jsonl"),
            }),
            inject_at: cfg.inject_commit_hard_error_at,
            plan_cache_capacity: cfg.plan_cache,
        }
    }

    /// Route a per-request event: to the sink in full mode, and always into
    /// the flight ring if one is attached. The builder only runs when
    /// someone will observe the event.
    fn note_event<F: Fn() -> obs::Event>(&mut self, rec: &mut Recorder, build: F) {
        if self.full {
            rec.emit_with(&build);
        }
        if let Some(fl) = self.flight.as_mut() {
            fl.ring.push(build());
        }
    }

    /// Window boundary check, run after every committed request.
    fn after_request(&mut self, rec: &mut Recorder) {
        let Some(w) = &self.window else { return };
        let due = match w.interval {
            MetricsInterval::Requests(n) => {
                self.metrics.shard(0).counter(pipeline_metrics::C_REQUESTS) - w.base_requests >= n
            }
            // Wall-clock windows: cadence is nondeterministic by nature, but
            // window *contents* are still exact counter deltas.
            MetricsInterval::Seconds(s) => w.window_started.elapsed().as_secs_f64() >= s,
        };
        if due {
            self.emit_window(rec, false);
        }
    }

    /// Cut the current window and emit its `stream.window` summary.
    fn emit_window(&mut self, rec: &mut Recorder, final_window: bool) {
        let Some(w) = self.window.as_mut() else { return };
        let snap0 = self.metrics.shard_snapshot(0);
        let snap_all = self.metrics.snapshot();
        let d0 = snap0.diff(&w.base0);
        let d_all = snap_all.diff(&w.base_all);
        let requests = d0.counter("requests");
        if !(requests > 0 || (final_window && w.index == 0)) {
            // Empty window: emit nothing, just roll the clock forward.
            w.window_started = Instant::now();
            return;
        }
        let solver_now = rec.summary().counters;
        let solver_delta: Vec<(String, serde::Value)> = solver_now
            .iter()
            .map(|(name, v)| {
                let prev =
                    w.solver_base.iter().find(|(n, _)| n == name).map(|(_, p)| *p).unwrap_or(0);
                (name.clone(), serde::Value::U64(v.saturating_sub(prev)))
            })
            .collect();
        let elapsed_s = w.window_started.elapsed().as_secs_f64();
        let q_us = |snap: &MetricsSnapshot, hist: &str, q: f64| {
            snap.hist(hist).and_then(|h| h.quantile(q)).unwrap_or(0) / 1_000
        };
        let solve = d0.hist("solve_ns");
        let index = w.index;
        let cache_on = self.plan_cache_capacity > 0;
        rec.emit_with(|| {
            let mut e = obs::Event::new("stream.window")
                .with("window", index)
                .with("final", final_window)
                .with("requests", requests)
                .with("admitted", d0.counter("admitted"))
                .with("rejected", d0.counter("rejected.no_primary_placement"))
                .with("speculation_hits", d0.counter("speculation.hits"))
                .with("conflicts", d_all.counter("speculation.conflicts"))
                .with("inline_resolves", d0.counter("solves"))
                .with("overcommit_clamped", d0.counter("commit.overcommit_clamped"))
                .with("elapsed_s", elapsed_s)
                .with(
                    "throughput_rps",
                    if elapsed_s > 0.0 { requests as f64 / elapsed_s } else { 0.0 },
                )
                .with("solve_total_s", solve.map(|h| h.sum() as f64 / 1e9).unwrap_or(0.0))
                .with("solve_p50_us", q_us(&d0, "solve_ns", 0.50))
                .with("solve_p90_us", q_us(&d0, "solve_ns", 0.90))
                .with("solve_p99_us", q_us(&d0, "solve_ns", 0.99))
                .with("reserve_p99_us", q_us(&d0, "reserve_ns", 0.99))
                .with("commit_p99_us", q_us(&d0, "commit_ns", 0.99))
                .with("commit_wait_p99_us", q_us(&d_all, "commit_wait_ns", 0.99));
            // Cache columns only exist when the cache is on, so cache-off
            // windowed output stays byte-identical to the pre-cache schema.
            if cache_on {
                e = e
                    .with("plancache_hits", d_all.counter("plancache.hits"))
                    .with("plancache_epoch_skips", d_all.counter("plancache.epoch_skips"))
                    .with("plancache_reject_hits", d_all.counter("plancache.reject_hits"))
                    .with("plancache_misses", d_all.counter("plancache.misses"))
                    .with(
                        "plancache_validation_failures",
                        d_all.counter("plancache.validation_failures"),
                    );
            }
            e.with("solver", serde::Value::Obj(solver_delta))
        });
        w.base_requests = snap0.counter("requests");
        w.base0 = snap0;
        w.base_all = snap_all;
        w.solver_base = solver_now;
        w.window_started = Instant::now();
        w.index += 1;
    }

    /// End-of-stream hook: emit the final partial window, then (in windowed
    /// mode) bulk-load the legacy recorder aggregates from shard 0 so the
    /// `stream.admitted`/`stream.rejected` counters and the `stream.solve`
    /// timing keep working for summary tables that predate windowing.
    pub(crate) fn finish(&mut self, rec: &mut Recorder) {
        self.emit_window(rec, true);
        if !self.full {
            let snap0 = self.metrics.shard_snapshot(0);
            let admitted = snap0.counter("admitted");
            let rejected = snap0.counter("rejected.no_primary_placement");
            let conflicts = self.metrics.snapshot().counter("speculation.conflicts");
            if admitted > 0 {
                rec.count("stream.admitted", admitted);
            }
            if rejected > 0 {
                rec.count("stream.rejected", rejected);
            }
            if conflicts > 0 {
                rec.count("stream.conflicts", conflicts);
            }
            if let Some(h) = snap0.hist("solve_ns") {
                rec.record_time("stream.solve", Duration::from_nanos(h.sum()));
            }
        }
    }

    /// Snapshot the sharded metrics for the caller.
    pub(crate) fn observation(&self) -> StreamObservation {
        StreamObservation {
            pipeline: self.metrics.shard_snapshot(0),
            per_worker: (1..self.metrics.shards())
                .map(|i| self.metrics.shard_snapshot(i))
                .collect(),
            windows: self.window.as_ref().map(|w| w.index).unwrap_or(0),
            shard_contention: None,
            plan_cache: self.plan_cache_report(),
        }
    }

    /// Aggregate the `plancache.*` counters across all shards into the
    /// serializable cache-plane report (`None` when the cache is off).
    pub(crate) fn plan_cache_report(&self) -> Option<obs::PlanCacheReport> {
        (self.plan_cache_capacity > 0).then(|| {
            let all = self.metrics.snapshot();
            obs::PlanCacheReport {
                capacity: self.plan_cache_capacity as u64,
                hits: all.counter("plancache.hits"),
                epoch_skips: all.counter("plancache.epoch_skips"),
                reject_hits: all.counter("plancache.reject_hits"),
                misses: all.counter("plancache.misses"),
                validation_failures: all.counter("plancache.validation_failures"),
                insertions: all.counter("plancache.insertions"),
                evictions: all.counter("plancache.evictions"),
            }
        })
    }

    /// Dump the coordinator flight ring (if any) and panic — the commit
    /// hard-error path.
    fn commit_hard_error(&mut self, k: usize, reason: &str) -> ! {
        if let Some(fl) = &self.flight {
            let _ = fl.ring.dump_to_path(reason, &fl.path);
        }
        panic!("commit hard error at request {k}: {reason}");
    }
}

/// Per-thread metrics snapshots of a processed stream: the coordinator shard
/// (authoritative per-request counts, commit-path latencies, coordinator
/// wait) plus one shard per worker (speculative solves, job wait, commit
/// wait, conflicts attributed to the worker that speculated them). Kept
/// per-shard rather than merged so solve time is not double-counted between
/// a worker's speculation and the coordinator's authoritative record.
#[derive(Debug, Clone)]
pub struct StreamObservation {
    pub pipeline: MetricsSnapshot,
    pub per_worker: Vec<MetricsSnapshot>,
    /// `stream.window` events emitted (0 in full mode).
    pub windows: u64,
    /// Per-capacity-shard contention attribution — `Some` only for runs of
    /// the relaxed commit order ([`crate::relaxed`]); the deterministic
    /// engines have no capacity shards.
    pub shard_contention: Option<obs::ShardContentionReport>,
    /// Aggregated plan-cache counters — `Some` only when the run had
    /// `plan_cache > 0`.
    pub plan_cache: Option<obs::PlanCacheReport>,
}

/// Authoritative mutable state the commit step owns: the network residual,
/// (when sharing is on) the deployed-instance ledger, and the observability
/// state.
pub(crate) struct PipelineState {
    pub residual: Vec<f64>,
    /// `Some` iff `share_backups`; `(VNF type, node) -> instances`.
    pub deployed: Option<HashMap<(usize, usize), usize>>,
    /// Admission plan cache, `Some` iff `cfg.plan_cache > 0`.
    pub cache: Option<Arc<PlanCache>>,
    /// Per-node commit epochs backing the cache's fast path. Only the
    /// single-writer commit step ([`commit_request`]) maintains these, so they
    /// exist exactly when the cache does.
    pub epochs: Option<NodeEpochs>,
    pub obs: StreamObs,
}

impl PipelineState {
    /// `shards` counts metric owners: 1 for the sequential driver,
    /// `workers + 1` for the parallel engine (shard 0 = coordinator).
    pub(crate) fn new(network: &MecNetwork, cfg: &StreamConfig, shards: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.initial_capacity_fraction),
            "capacity fraction must be in [0, 1]"
        );
        assert!(
            !(cfg.share_backups && cfg.plan_cache > 0),
            "plan cache is incompatible with share_backups: a cached plan's \
             reliability depends on neighbors' deployed instances"
        );
        PipelineState {
            residual: network.residual_capacities(cfg.initial_capacity_fraction),
            deployed: cfg.share_backups.then(HashMap::new),
            cache: (cfg.plan_cache > 0).then(|| Arc::new(PlanCache::new(cfg.plan_cache))),
            epochs: (cfg.plan_cache > 0).then(|| NodeEpochs::new(network.num_nodes())),
            obs: StreamObs::new(cfg, shards),
        }
    }
}

/// How much solver telemetry a speculation captures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum TraceLevel {
    /// No recorder work at all (untraced runs).
    Off,
    /// Solver counters only (windowed mode): aggregates like B&B node and
    /// pivot counts merge into the main recorder at commit, events are
    /// never materialized.
    Counters,
    /// Full solver event capture in a private memory recorder, replayed
    /// into the main recorder at commit in sequence order.
    Full,
}

/// A worker's speculative result for one request, computed against a
/// capacity snapshot. `placement: None` means the snapshot had no room for
/// the primaries. The commit step validates the speculation against the
/// authoritative state and reuses `outcome` only on an exact match.
pub(crate) struct Speculation {
    pub placement: Option<PrimaryPlacement>,
    pub instance: Option<AugmentationInstance>,
    pub outcome: Option<Outcome>,
    /// Solver telemetry captured in a private recorder (traced runs only),
    /// absorbed into the main recorder at commit in sequence order.
    pub solver_rec: Option<Recorder>,
    pub solve_elapsed: Duration,
    /// Metrics shard of the thread that produced this speculation (0 when
    /// produced inline by the coordinator/sequential driver).
    pub worker: usize,
    /// When the producing worker finished the speculation — the commit step
    /// turns this into commit-wait (sequencer lag) attribution.
    pub completed_at: Option<Instant>,
}

/// Build the augmentation instance for an admitted request: localized to the
/// primaries' `l`-neighborhoods (so equality is insensitive to unrelated
/// commits elsewhere in the network) and, when sharing, seeded with the
/// existing deployed instances in range.
fn build_instance(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    req: &SfcRequest,
    placement: &PrimaryPlacement,
    residual: &[f64],
    nbhd: &NeighborhoodIndex,
    deployed: Option<&HashMap<(usize, usize), usize>>,
) -> AugmentationInstance {
    let mut inst = AugmentationInstance::new_localized_with_index(
        network,
        catalog,
        req,
        &placement.locations,
        residual,
        nbhd,
    );
    if let Some(deployed) = deployed {
        for (i, f) in inst.functions.iter_mut().enumerate() {
            let type_idx = req.sfc[i].index();
            // Deployed instances only live on cloudlets, so the index's
            // cloudlet slice sees everything the full BFS ball would.
            f.existing_backups = nbhd
                .cloudlets_within(f.primary)
                .iter()
                .filter_map(|u| deployed.get(&(type_idx, u.index())))
                .sum();
        }
    }
    inst
}

/// Speculatively process request `k` against caller-owned local state:
/// admit (applying the primaries' debits to `residual` in place), build the
/// instance, solve. Pure in (local state, seed, k) — no shared state is
/// touched, so workers can run this concurrently and out of order.
#[allow(clippy::too_many_arguments)]
fn speculate_local(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    cfg: &StreamConfig,
    seed: u64,
    k: usize,
    req: &SfcRequest,
    residual: &mut [f64],
    deployed: Option<&HashMap<(usize, usize), usize>>,
    trace: TraceLevel,
    nbhd: &NeighborhoodIndex,
    scratch: &mut SolveScratch,
) -> Speculation {
    let demands = &mut scratch.commit.demands;
    demands.clear();
    demands.extend(req.sfc.iter().map(|&f| catalog.demand(f)));
    let mut admit_rng = request_rng(seed, k, ADMIT_SALT);
    let Some(placement) =
        random_placement_capacity_aware(network, req, demands, residual, &mut admit_rng)
    else {
        return Speculation {
            placement: None,
            instance: None,
            outcome: None,
            solver_rec: None,
            solve_elapsed: Duration::ZERO,
            worker: 0,
            completed_at: None,
        };
    };
    let inst = build_instance(network, catalog, req, &placement, residual, nbhd, deployed);
    let mut solve_rng = request_rng(seed, k, SOLVE_SALT);
    let mut solver_rec = match trace {
        TraceLevel::Off => Recorder::noop(),
        TraceLevel::Counters => Recorder::counters_only(),
        TraceLevel::Full => Recorder::memory(),
    };
    let solve_started = Instant::now();
    let outcome = cfg.algorithm.solve_scratch(&inst, &mut solve_rng, &mut solver_rec, scratch);
    Speculation {
        placement: Some(placement),
        instance: Some(inst),
        outcome: Some(outcome),
        solver_rec: (trace != TraceLevel::Off).then_some(solver_rec),
        solve_elapsed: solve_started.elapsed(),
        worker: 0,
        completed_at: None,
    }
}

/// Speculatively process a contiguous batch of requests starting at sequence
/// position `start` against one state snapshot. Within the batch each request
/// sees its predecessors' *simulated* commits — the same admission debits,
/// two-phase secondary debits and deployed-ledger updates the coordinator
/// will apply, computed on a worker-local copy — so intra-batch speculations
/// stay valid whenever the snapshot itself does. Correctness never depends on
/// that: commit-time validation is unchanged, so a stale simulation only
/// costs an inline re-solve.
#[allow(clippy::too_many_arguments)]
pub(crate) fn speculate_batch(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    cfg: &StreamConfig,
    seed: u64,
    start: usize,
    reqs: &[SfcRequest],
    residual_snapshot: &[f64],
    deployed_snapshot: Option<&HashMap<(usize, usize), usize>>,
    trace: TraceLevel,
    nbhd: &NeighborhoodIndex,
    scratch: &mut SolveScratch,
) -> Vec<Speculation> {
    let mut residual = residual_snapshot.to_vec();
    let mut deployed = deployed_snapshot.cloned();
    let mut specs = Vec::with_capacity(reqs.len());
    for (off, req) in reqs.iter().enumerate() {
        let spec = speculate_local(
            network,
            catalog,
            cfg,
            seed,
            start + off,
            req,
            &mut residual,
            deployed.as_ref(),
            trace,
            nbhd,
            scratch,
        );
        if let (Some(placement), Some(inst), Some(outcome)) =
            (&spec.placement, &spec.instance, &spec.outcome)
        {
            apply_secondary_debits(network, &mut residual, inst, outcome, None);
            if let Some(deployed) = deployed.as_mut() {
                apply_deployed_updates(deployed, req, placement, inst, outcome);
            }
        }
        specs.push(spec);
    }
    specs
}

/// Debit an admitted request's secondary loads against `residual` through the
/// network's two-phase reserve/commit ledger, falling back to the legacy
/// clamp-at-zero on overcommit (only the randomized rounding can overcommit).
/// Shared verbatim by the authoritative commit and the worker-local batch
/// simulation, so both walk the identical floating-point path. When `timing`
/// is supplied (the authoritative commit), the `try_reserve`/`commit`
/// latencies land in its `reserve_ns`/`commit_ns` histograms. Returns whether
/// the overcommit fallback fired.
fn apply_secondary_debits(
    network: &MecNetwork,
    residual: &mut [f64],
    inst: &AugmentationInstance,
    outcome: &Outcome,
    timing: Option<&obs::MetricsShard>,
) -> bool {
    use pipeline_metrics::{H_COMMIT_NS, H_RESERVE_NS};
    let loads = outcome.augmentation.bin_loads(inst);
    let debits: Vec<(NodeId, f64)> = loads
        .iter()
        .enumerate()
        .filter(|&(_, &load)| load > 0.0)
        .map(|(bin_idx, &load)| (inst.bins[bin_idx].node, load))
        .collect();
    let reserve_started = Instant::now();
    let reserved = network.try_reserve(residual, &debits);
    if let Some(shard) = timing {
        shard.record_duration(H_RESERVE_NS, reserve_started.elapsed());
    }
    match reserved {
        Ok(mut reservation) => {
            let commit_started = Instant::now();
            network.commit(&mut reservation).expect("fresh reservation commits");
            if let Some(shard) = timing {
                shard.record_duration(H_COMMIT_NS, commit_started.elapsed());
            }
            false
        }
        Err(_) => {
            for &(node, load) in &debits {
                let v = node.index();
                residual[v] = (residual[v] - load).max(0.0);
            }
            true
        }
    }
}

/// Fold an admitted request's primaries and secondaries into the deployed
/// ledger (sharing mode only). Shared by commit and batch simulation.
fn apply_deployed_updates(
    deployed: &mut HashMap<(usize, usize), usize>,
    req: &SfcRequest,
    placement: &PrimaryPlacement,
    inst: &AugmentationInstance,
    outcome: &Outcome,
) {
    for (f, &loc) in req.sfc.iter().zip(&placement.locations) {
        *deployed.entry((f.index(), loc.index())).or_insert(0) += 1;
    }
    for func in 0..inst.chain_len() {
        let type_idx = req.sfc[func].index();
        for &(bin_idx, count) in outcome.augmentation.placements_of(func) {
            *deployed.entry((type_idx, inst.bins[bin_idx].node.index())).or_insert(0) += count;
        }
    }
}

/// Differential oracle (`StreamConfig::plan_cache_oracle`): before a cache
/// hit is applied, certify the entry from first principles and re-run the
/// fresh solve it would skip.
///
/// "Cost never better than a fresh solve on the same residual state" is
/// enforced where it is sound: the stored cost *is* the fresh solve's cost at
/// the residual state the plan was solved on, so the oracle recomputes it
/// bit-exactly from the stored secondary counts (a stale plan cannot smuggle
/// a too-good cost), recomputes the achieved reliability from the live
/// catalog, and checks the merged debits sum to exactly what chain + counts
/// imply. Against the *live* residual state no cost ordering is sound — the
/// solvers are heuristics, not optima, and a plan solved on fuller residuals
/// can legitimately dominate what a fresh solve finds on the drained network
/// — so the fresh solve runs as a cross-witness (the instance must still
/// build and solve under cached state) rather than as a cost bound. The
/// primaries' debits are replayed through a reservation and aborted, so
/// `residual` comes back bit-identical.
#[allow(clippy::too_many_arguments)]
fn plan_cache_oracle_check(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    cfg: &StreamConfig,
    seed: u64,
    k: usize,
    req: &SfcRequest,
    entry: &PlanEntry,
    residual: &mut [f64],
    nbhd: &NeighborhoodIndex,
    scratch: &mut SolveScratch,
) {
    // Cost integrity: the paper cost is a pure function of (chain, counts) —
    // recompute it the way the solver's metrics do (no existing-backup
    // offset; cached mode refuses `share_backups`).
    let recomputed_cost: f64 = entry
        .chain
        .iter()
        .zip(&entry.counts)
        .map(|(&f, &m)| {
            let r = catalog.reliability(f);
            (1..=m).map(|j| reliability::paper_cost(r, j)).sum::<f64>()
        })
        .sum();
    assert!(
        (recomputed_cost - entry.cost).abs() <= 1e-9,
        "cached plan at request {k} carries a cost that does not recompute from \
         its own counts: stored {} vs recomputed {recomputed_cost}",
        entry.cost,
    );
    // Reliability integrity: the stored achievement must recompute from the
    // live catalog and still clear the incoming request's exact expectation.
    let recomputed_rel = entry.recomputed_reliability(catalog);
    assert!(
        (recomputed_rel - entry.achieved_reliability).abs() <= 1e-9,
        "cached plan at request {k} carries a reliability that does not recompute \
         from the catalog: stored {} vs recomputed {recomputed_rel}",
        entry.achieved_reliability,
    );
    assert!(
        recomputed_rel + 1e-12 >= req.expectation,
        "cache hit at request {k} below threshold: {recomputed_rel} < {}",
        req.expectation
    );
    // Debit integrity: the merged footprint must account for exactly one
    // primary plus `counts[f]` secondaries of each function's demand.
    let implied: f64 = entry
        .chain
        .iter()
        .zip(&entry.counts)
        .map(|(&f, &m)| catalog.demand(f) * (1 + m) as f64)
        .sum();
    let total: f64 = entry.debits.iter().map(|d| d.1).sum();
    assert!(
        (implied - total).abs() <= 1e-6,
        "cached plan at request {k} debits {total} != implied footprint {implied}"
    );
    let admit_debits: Vec<(NodeId, f64)> = entry
        .primaries
        .iter()
        .zip(&entry.chain)
        .map(|(&node, &f)| (node, catalog.demand(f)))
        .collect();
    // If the cached primaries no longer fit, the capacity re-validation (not
    // the oracle) decides this hit's fate.
    let Ok(mut resv) = network.try_reserve(residual, &admit_debits) else {
        return;
    };
    let placement = PrimaryPlacement { locations: entry.primaries.clone() };
    let inst = build_instance(network, catalog, req, &placement, residual, nbhd, None);
    let mut solve_rng = request_rng(seed, k, SOLVE_SALT);
    let outcome =
        cfg.algorithm.solve_scratch(&inst, &mut solve_rng, &mut Recorder::noop(), scratch);
    // Cross-witness: when the fresh solve succeeds, its cost must itself obey
    // the same counts→cost function — the two paths can rank either way on a
    // drained network, but neither may misprice its own plan.
    if outcome.metrics.met_expectation {
        let fresh_recomputed = outcome.augmentation.paper_cost(&inst);
        assert!(
            (fresh_recomputed - outcome.metrics.paper_cost).abs() <= 1e-9,
            "fresh solve at request {k} mispriced its own plan: {} vs {fresh_recomputed}",
            outcome.metrics.paper_cost,
        );
    }
    network.abort(residual, &mut resv).expect("oracle reservation aborts");
}

/// Commit request `k` against the authoritative state, in sequence order.
///
/// Re-runs admission (cheap — it also applies the primaries' debits), then
/// rebuilds the localized instance and compares it against the speculation.
/// On an exact match ([`AugmentationInstance`] equality guarantees the solver
/// would reproduce the speculated outcome bit for bit, given the same derived
/// RNG) the speculated outcome is reused; otherwise the request is re-solved
/// inline — which is *exactly* what the sequential pipeline would compute, so
/// the merged result is byte-identical regardless of worker count or timing.
/// Secondaries commit through the network's two-phase reserve/commit ledger;
/// only the randomized algorithm can overcommit, in which case the debit
/// falls back to the legacy clamp-at-zero semantics.
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit_request(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    cfg: &StreamConfig,
    seed: u64,
    k: usize,
    req: &SfcRequest,
    state: &mut PipelineState,
    spec: Option<Speculation>,
    rec: &mut Recorder,
    nbhd: &NeighborhoodIndex,
    scratch: &mut SolveScratch,
) -> RequestRecord {
    use pipeline_metrics::*;
    // Fault injection for the flight-recorder path: fail the commit step
    // before touching any state, whatever the request's fate would have been.
    if state.obs.inject_at == Some(k) {
        state.obs.commit_hard_error(k, "commit_hard_error_injected");
    }
    state.obs.metrics.shard(0).incr(C_REQUESTS);
    // Commit-wait attribution: how long the speculation sat finished,
    // waiting for its sequence turn (charged to the worker that produced it).
    if let Some(s) = &spec {
        if let Some(done) = s.completed_at {
            state.obs.metrics.shard(s.worker).record_duration(H_COMMIT_WAIT_NS, done.elapsed());
        }
    }
    // --- Admission plan cache (opt-in, `cfg.plan_cache > 0`) ---------------
    // Consulted only here, in sequence order, so the cache always sees the
    // residual history the sequential driver would produce. A hit bypasses
    // admission + solve entirely; any validation failure falls through to the
    // fresh path below, which repopulates the entry.
    if let Some(cache) = state.cache.clone() {
        // Reject gate: stream residuals never increase, so once a full-scan
        // rejection measured a maximum cloudlet residual below this chain's
        // largest per-function demand, admission cannot possibly succeed.
        let max_demand = req.sfc.iter().map(|&f| catalog.demand(f)).fold(0.0f64, f64::max);
        if cache.gate_rejects(max_demand) {
            let shard = state.obs.metrics.shard(0);
            shard.incr(C_PC_REJECT_HITS);
            shard.incr(C_REJECTED);
            if state.obs.full {
                rec.count("stream.rejected", 1);
            }
            let residual = &state.residual;
            let id = req.id;
            state.obs.note_event(rec, || {
                stream_request_event(id, residual)
                    .with("admitted", false)
                    .with("reason", "no_primary_placement")
            });
            state.obs.after_request(rec);
            return RequestRecord {
                id: req.id,
                admitted: false,
                base_reliability: 0.0,
                achieved_reliability: 0.0,
                met_expectation: false,
                secondaries: 0,
            };
        }
        let pkey = PlanKey::for_request(req, cfg.l);
        let epochs = state.epochs.as_ref();
        let residual = &mut state.residual;
        let mut epoch_skip = false;
        let probe = cache.probe(&pkey, &req.sfc, |entry| {
            // Reliability re-check against the live catalog and the incoming
            // request's *exact* expectation (the key only bucketed it).
            let achieved = entry.recomputed_reliability(catalog);
            if achieved < req.expectation {
                return None;
            }
            if cfg.plan_cache_oracle {
                plan_cache_oracle_check(
                    network, catalog, cfg, seed, k, req, entry, residual, nbhd, scratch,
                );
            }
            // Capacity re-validation. Unchanged epoch stamps mean the touched
            // residuals are bit-identical to the entry's post-apply snapshot,
            // so its precomputed `refit` flag alone certifies feasibility;
            // otherwise replay the debits through the same two-phase ledger a
            // fresh commit uses.
            if entry.refit && epochs.is_some_and(|e| entry.epochs_unchanged(e)) {
                for &(node, amount) in &entry.debits {
                    let v = node.index();
                    residual[v] = (residual[v] - amount).max(0.0);
                }
                epoch_skip = true;
            } else {
                let mut resv = network.try_reserve(residual, &entry.debits).ok()?;
                network.commit(&mut resv).expect("fresh reservation commits");
            }
            if let Some(e) = epochs {
                for &(node, _) in &entry.debits {
                    e.bump(node.index());
                }
                entry.stamp(e, |idx| residual[idx]);
            }
            Some((entry.base_reliability, achieved, entry.secondaries))
        });
        match probe {
            Probe::Hit((base, achieved, secondaries)) => {
                let shard = state.obs.metrics.shard(0);
                shard.incr(C_PC_HITS);
                if epoch_skip {
                    shard.incr(C_PC_EPOCH_SKIPS);
                }
                shard.incr(C_ADMITTED);
                if state.obs.full {
                    rec.count("stream.admitted", 1);
                }
                let residual = &state.residual;
                let id = req.id;
                state.obs.note_event(rec, || {
                    stream_request_event(id, residual)
                        .with("admitted", true)
                        .with("base_reliability", base)
                        .with("achieved_reliability", achieved)
                        .with("met_expectation", true)
                        .with("secondaries", secondaries)
                });
                state.obs.after_request(rec);
                return RequestRecord {
                    id: req.id,
                    admitted: true,
                    base_reliability: base,
                    achieved_reliability: achieved,
                    met_expectation: true,
                    secondaries,
                };
            }
            Probe::Stale => {
                let shard = state.obs.metrics.shard(0);
                shard.incr(C_PC_MISSES);
                shard.incr(C_PC_VALIDATION_FAILURES);
            }
            Probe::Miss => {
                state.obs.metrics.shard(0).incr(C_PC_MISSES);
            }
        }
    }
    let demands = &mut scratch.commit.demands;
    demands.clear();
    demands.extend(req.sfc.iter().map(|&f| catalog.demand(f)));
    let mut admit_rng = request_rng(seed, k, ADMIT_SALT);
    let Some(placement) =
        random_placement_capacity_aware(network, req, demands, &mut state.residual, &mut admit_rng)
    else {
        state.obs.metrics.shard(0).incr(C_REJECTED);
        if state.obs.full {
            rec.count("stream.rejected", 1);
        }
        if let Some(cache) = &state.cache {
            // Full-scan rejection: calibrate the reject gate with the live
            // maximum cloudlet residual.
            let m = network
                .cloudlet_ids()
                .iter()
                .map(|&v| state.residual[v.index()])
                .fold(0.0f64, f64::max);
            cache.observe_max_residual(m);
        }
        let residual = &state.residual;
        let id = req.id;
        state.obs.note_event(rec, || {
            stream_request_event(id, residual)
                .with("admitted", false)
                .with("reason", "no_primary_placement")
        });
        state.obs.after_request(rec);
        return RequestRecord {
            id: req.id,
            admitted: false,
            base_reliability: 0.0,
            achieved_reliability: 0.0,
            met_expectation: false,
            secondaries: 0,
        };
    };
    let inst = build_instance(
        network,
        catalog,
        req,
        &placement,
        &state.residual,
        nbhd,
        state.deployed.as_ref(),
    );
    let speculated = spec.is_some();
    let valid = match &spec {
        Some(s) => s.placement.as_ref() == Some(&placement) && s.instance.as_ref() == Some(&inst),
        None => false,
    };
    let (outcome, solver_rec, solve_elapsed) = if valid {
        state.obs.metrics.shard(0).incr(C_SPEC_HITS);
        let s = spec.unwrap();
        (s.outcome.unwrap(), s.solver_rec, s.solve_elapsed)
    } else {
        if speculated {
            // Conflict-induced re-solve, attributed to the worker whose
            // speculation went stale.
            state.obs.metrics.shard(spec.as_ref().unwrap().worker).incr(C_CONFLICTS);
            if state.obs.full {
                rec.count("stream.conflicts", 1);
            }
        }
        state.obs.metrics.shard(0).incr(C_SOLVES);
        let mut solve_rng = request_rng(seed, k, SOLVE_SALT);
        let mut solver_rec = if !rec.enabled() {
            Recorder::noop()
        } else if state.obs.full {
            Recorder::memory()
        } else {
            Recorder::counters_only()
        };
        let solve_started = Instant::now();
        let outcome = cfg.algorithm.solve_scratch(&inst, &mut solve_rng, &mut solver_rec, scratch);
        (outcome, rec.enabled().then_some(solver_rec), solve_started.elapsed())
    };
    if let Some(solver_rec) = solver_rec {
        rec.absorb(solver_rec);
    }
    state.obs.metrics.shard(0).record_duration(H_SOLVE_NS, solve_elapsed);
    if state.obs.full {
        rec.record_time("stream.solve", solve_elapsed);
        rec.time_sample("stream.solve", solve_elapsed);
    }
    // Commit the secondaries' consumption through the two-phase ledger —
    // all-or-nothing against the authoritative residual. The feasible
    // algorithms never exceed the bin residuals the instance advertised; the
    // randomized rounding may, and then the debit falls back to the legacy
    // clamp-at-zero (the overcommit shows up as unmet expectations later in
    // the stream, not as negative capacity).
    let clamped = apply_secondary_debits(
        network,
        &mut state.residual,
        &inst,
        &outcome,
        Some(state.obs.metrics.shard(0)),
    );
    if clamped {
        state.obs.metrics.shard(0).incr(C_OVERCOMMIT);
    }
    if let Some(deployed) = state.deployed.as_mut() {
        apply_deployed_updates(deployed, req, &placement, &inst, &outcome);
    }
    state.obs.metrics.shard(0).incr(C_ADMITTED);
    if state.obs.full {
        rec.count("stream.admitted", 1);
    }
    // Maintain the plan cache: every permanent residual decrease bumps the
    // touched nodes' epochs (the fast path is only sound if *all* decreases
    // are visible), and a threshold-meeting, unclamped plan (re)populates the
    // entry for its key.
    if let Some(cache) = &state.cache {
        let loads = outcome.augmentation.bin_loads(&inst);
        let mut raw: Vec<(NodeId, f64)> = Vec::with_capacity(req.sfc.len() + loads.len());
        for (&f, &node) in req.sfc.iter().zip(&placement.locations) {
            raw.push((node, catalog.demand(f)));
        }
        for (bin_idx, &load) in loads.iter().enumerate() {
            if load > 0.0 {
                raw.push((inst.bins[bin_idx].node, load));
            }
        }
        if let Some(epochs) = &state.epochs {
            for &(node, _) in &raw {
                epochs.bump(node.index());
            }
        }
        if outcome.metrics.met_expectation && !clamped {
            let mut entry = PlanEntry::new(
                PlanKey::for_request(req, cfg.l),
                req.sfc.clone(),
                placement.locations.clone(),
                outcome.augmentation.counts(),
                &raw,
                outcome.metrics.base_reliability,
                outcome.metrics.reliability,
                outcome.metrics.paper_cost,
            );
            if let Some(epochs) = &state.epochs {
                let residual = &state.residual;
                entry.stamp(epochs, |idx| residual[idx]);
            }
            let shard = state.obs.metrics.shard(0);
            shard.incr(C_PC_INSERTIONS);
            if cache.insert(entry) {
                shard.incr(C_PC_EVICTIONS);
            }
        }
    }
    // Unlike the legacy event this one carries no wall-clock field
    // (`solve_s`): the JSONL stream must be byte-identical across worker
    // counts, and wall time is the one thing speculation cannot replay.
    // Solve time still lands in the `stream.solve` timing aggregate.
    {
        let residual = &state.residual;
        let id = req.id;
        let metrics = &outcome.metrics;
        state.obs.note_event(rec, || {
            stream_request_event(id, residual)
                .with("admitted", true)
                .with("base_reliability", metrics.base_reliability)
                .with("achieved_reliability", metrics.reliability)
                .with("met_expectation", metrics.met_expectation)
                .with("secondaries", metrics.total_secondaries)
        });
    }
    state.obs.after_request(rec);
    RequestRecord {
        id: req.id,
        admitted: true,
        base_reliability: outcome.metrics.base_reliability,
        achieved_reliability: outcome.metrics.reliability,
        met_expectation: outcome.metrics.met_expectation,
        secondaries: outcome.metrics.total_secondaries,
    }
}

/// Sequential reference implementation of the seeded pipeline.
///
/// Same contract as [`process_stream`] but with per-request derived RNGs
/// instead of one shared stream: the result depends only on `(network,
/// catalog, requests, cfg, seed)`, never on how randomness interleaves.
/// [`crate::parallel::process_stream_parallel`] is byte-identical to this for
/// every worker count.
pub fn process_stream_seeded(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: &[SfcRequest],
    cfg: &StreamConfig,
    seed: u64,
) -> StreamOutcome {
    process_stream_seeded_traced(network, catalog, requests, cfg, seed, &mut Recorder::noop())
}

/// [`process_stream_seeded`] with telemetry; the event stream is identical to
/// the parallel engine's after its deterministic merge.
pub fn process_stream_seeded_traced(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: &[SfcRequest],
    cfg: &StreamConfig,
    seed: u64,
    rec: &mut Recorder,
) -> StreamOutcome {
    process_stream_seeded_observed(network, catalog, requests, cfg, seed, rec).0
}

/// [`process_stream_seeded_traced`] returning the per-shard metrics
/// observation alongside the outcome.
pub fn process_stream_seeded_observed(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: &[SfcRequest],
    cfg: &StreamConfig,
    seed: u64,
    rec: &mut Recorder,
) -> (StreamOutcome, StreamObservation) {
    let mut records = Vec::with_capacity(requests.len());
    let (final_residual, observation) = process_stream_seeded_sink(
        network,
        catalog,
        requests.iter().cloned(),
        cfg,
        seed,
        rec,
        &mut |r| records.push(r),
    );
    (StreamOutcome { records, final_residual }, observation)
}

/// The sequential seeded driver over a *lazy* request source: requests are
/// pulled from the iterator one at a time and each [`RequestRecord`] is
/// handed to `on_record` instead of being collected, so a 10^6-request
/// stream runs in O(1) memory beyond the network state (the scenario
/// generator's `RequestStream` synthesizes request `k` on demand from a
/// splitmix64-derived RNG, so nothing is ever materialized). The slice entry
/// points above delegate here; results are byte-identical.
pub fn process_stream_seeded_sink(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: impl IntoIterator<Item = SfcRequest>,
    cfg: &StreamConfig,
    seed: u64,
    rec: &mut Recorder,
    on_record: &mut dyn FnMut(RequestRecord),
) -> (Vec<f64>, StreamObservation) {
    let mut state = PipelineState::new(network, cfg, 1);
    let nbhd = network.neighborhood_index(cfg.l);
    let mut scratch = SolveScratch::new();
    for (k, req) in requests.into_iter().enumerate() {
        let record = commit_request(
            network,
            catalog,
            cfg,
            seed,
            k,
            &req,
            &mut state,
            None,
            rec,
            &nbhd,
            &mut scratch,
        );
        on_record(record);
    }
    state.obs.finish(rec);
    let observation = state.obs.observation();
    (state.residual, observation)
}

/// Common prefix of a `stream.request` event: the request id plus a snapshot
/// of the residual capacity *after* this request was processed.
fn stream_request_event(id: usize, residual: &[f64]) -> obs::Event {
    let total: f64 = residual.iter().sum();
    let min = residual.iter().copied().fold(f64::INFINITY, f64::min);
    let max = residual.iter().copied().fold(0.0f64, f64::max);
    obs::Event::new("stream.request")
        .with("id", id)
        .with("residual_total", total)
        .with("residual_min", if min.is_finite() { min } else { 0.0 })
        .with("residual_max", max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mecnet::topology;
    use mecnet::vnf::VnfType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (MecNetwork, VnfCatalog) {
        let g = topology::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let net = MecNetwork::with_random_cloudlets(g, 4, (2000.0, 3000.0), &mut rng);
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "a".into(), demand_mhz: 300.0, reliability: 0.85 });
        cat.add(VnfType { name: "b".into(), demand_mhz: 400.0, reliability: 0.9 });
        (net, cat)
    }

    fn make_requests(n: usize, cat: &VnfCatalog, nodes: usize, seed: u64) -> Vec<SfcRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|i| SfcRequest::random(i, cat, (2, 2), 0.99, nodes, &mut rng)).collect()
    }

    #[test]
    fn stream_admits_until_capacity_runs_out() {
        let (net, cat) = setup();
        let reqs = make_requests(40, &cat, net.num_nodes(), 7);
        let mut rng = StdRng::seed_from_u64(2);
        let out = process_stream(&net, &cat, &reqs, &StreamConfig::default(), &mut rng);
        assert_eq!(out.records.len(), 40);
        assert!(out.admitted() > 0, "some requests must fit");
        assert!(out.rejected() > 0, "40 chains cannot all fit in ~10 GHz");
        // Capacity only decreases and never goes negative.
        for (&r, v) in out.final_residual.iter().zip(net.graph().nodes()) {
            assert!(r >= -1e-9);
            assert!(r <= net.capacity(v) + 1e-9);
        }
    }

    #[test]
    fn early_requests_get_better_reliability() {
        let (net, cat) = setup();
        let reqs = make_requests(30, &cat, net.num_nodes(), 8);
        let mut rng = StdRng::seed_from_u64(3);
        let out = process_stream(&net, &cat, &reqs, &StreamConfig::default(), &mut rng);
        let admitted: Vec<&RequestRecord> = out.records.iter().filter(|r| r.admitted).collect();
        assert!(admitted.len() >= 4);
        let half = admitted.len() / 2;
        let early: f64 =
            admitted[..half].iter().map(|r| r.achieved_reliability).sum::<f64>() / half as f64;
        let late: f64 = admitted[half..].iter().map(|r| r.achieved_reliability).sum::<f64>()
            / (admitted.len() - half) as f64;
        assert!(
            early >= late - 0.05,
            "late arrivals should not do better: early {early} late {late}"
        );
    }

    #[test]
    fn rejected_when_no_capacity_at_all() {
        let (net, cat) = setup();
        let reqs = make_requests(3, &cat, net.num_nodes(), 9);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = StreamConfig { initial_capacity_fraction: 0.0, ..Default::default() };
        let out = process_stream(&net, &cat, &reqs, &cfg, &mut rng);
        assert_eq!(out.admitted(), 0);
        assert_eq!(out.mean_reliability(), None);
        assert_eq!(out.expectation_rate(), None);
    }

    #[test]
    fn all_algorithms_run_in_stream_mode() {
        let (net, cat) = setup();
        let reqs = make_requests(6, &cat, net.num_nodes(), 10);
        for algorithm in [
            Algorithm::Ilp(Default::default()),
            Algorithm::Randomized(Default::default()),
            Algorithm::Heuristic(Default::default()),
            Algorithm::Greedy(Default::default()),
        ] {
            let mut rng = StdRng::seed_from_u64(5);
            let cfg = StreamConfig { algorithm, ..Default::default() };
            let out = process_stream(&net, &cat, &reqs, &cfg, &mut rng);
            assert_eq!(out.records.len(), 6);
            for r in out.records.iter().filter(|r| r.admitted) {
                assert!(r.achieved_reliability >= r.base_reliability - 1e-12);
            }
        }
    }

    #[test]
    fn sharing_improves_late_arrivals() {
        // Many requests over a small catalog: with sharing, later requests
        // find existing instances of their types and reach the expectation
        // with fewer new secondaries.
        let (net, cat) = setup();
        let reqs = make_requests(25, &cat, net.num_nodes(), 21);
        let run = |share: bool| {
            let mut rng = StdRng::seed_from_u64(9);
            let cfg = StreamConfig { share_backups: share, ..Default::default() };
            process_stream(&net, &cat, &reqs, &cfg, &mut rng)
        };
        let plain = run(false);
        let shared = run(true);
        // Sharing never hurts: fewer secondaries in total for at least the
        // same overall reliability mass.
        let total_secondaries =
            |o: &StreamOutcome| -> usize { o.records.iter().map(|r| r.secondaries).sum() };
        assert!(
            total_secondaries(&shared) <= total_secondaries(&plain),
            "sharing should reduce secondary deployments: {} vs {}",
            total_secondaries(&shared),
            total_secondaries(&plain)
        );
        let mean = |o: &StreamOutcome| o.mean_reliability().unwrap_or(0.0);
        assert!(mean(&shared) >= mean(&plain) - 0.02);
    }

    #[test]
    fn sharing_counts_existing_instances() {
        // Two identical one-function requests on the same cloudlet: with
        // sharing the second sees the first's instances as existing backups.
        let (net, cat) = setup();
        let mut rng = StdRng::seed_from_u64(33);
        let reqs = make_requests(2, &cat, net.num_nodes(), 34);
        let cfg = StreamConfig { share_backups: true, ..Default::default() };
        let out = process_stream(&net, &cat, &reqs, &cfg, &mut rng);
        // No assertion on specifics (placement is random); the invariant is
        // that reliabilities remain valid probabilities and records complete.
        for r in &out.records {
            assert!(r.achieved_reliability >= 0.0 && r.achieved_reliability <= 1.0);
        }
    }

    #[test]
    fn traced_stream_emits_one_event_per_request() {
        let (net, cat) = setup();
        let reqs = make_requests(15, &cat, net.num_nodes(), 12);
        let mut rng = StdRng::seed_from_u64(13);
        let mut rec = Recorder::memory();
        let out =
            process_stream_traced(&net, &cat, &reqs, &StreamConfig::default(), &mut rng, &mut rec);
        let req_events: Vec<_> =
            rec.events().iter().filter(|e| e.kind == "stream.request").collect();
        assert_eq!(req_events.len(), reqs.len(), "exactly one stream.request event per request");
        let admitted_events =
            req_events.iter().filter(|e| e.field("admitted").unwrap().as_bool() == Some(true));
        assert_eq!(admitted_events.count(), out.admitted());
        assert_eq!(rec.counter("stream.admitted"), out.admitted() as u64);
        assert_eq!(rec.counter("stream.rejected"), out.rejected() as u64);
        for e in &req_events {
            if e.field("admitted").unwrap().as_bool() == Some(false) {
                assert_eq!(e.field("reason").unwrap().as_str(), Some("no_primary_placement"));
            } else {
                assert!(e.field("solve_s").unwrap().as_f64().is_some());
                assert!(e.field("secondaries").unwrap().as_u64().is_some());
            }
            assert!(e.field("residual_total").unwrap().as_f64().unwrap() >= 0.0);
        }
    }

    #[test]
    fn windowed_mode_emits_bounded_summaries() {
        let (net, cat) = setup();
        let reqs = make_requests(120, &cat, net.num_nodes(), 14);
        let cfg = StreamConfig {
            metrics: MetricsMode::Windowed(MetricsInterval::Requests(25)),
            ..Default::default()
        };
        let mut rec = Recorder::memory();
        let (out, ob) = process_stream_seeded_observed(&net, &cat, &reqs, &cfg, 17, &mut rec);
        assert!(
            rec.events().iter().all(|e| e.kind == "stream.window"),
            "windowed mode must suppress per-request events"
        );
        let windows = rec.events();
        // 4 full windows of 25 plus the final partial window of 20.
        assert_eq!(windows.len(), 5);
        assert_eq!(ob.windows, 5);
        let sum = |field: &str| -> u64 {
            windows.iter().map(|e| e.field(field).unwrap().as_u64().unwrap()).sum()
        };
        assert_eq!(sum("requests"), reqs.len() as u64);
        assert_eq!(sum("admitted"), out.admitted() as u64);
        assert_eq!(sum("rejected"), out.rejected() as u64);
        for (i, e) in windows.iter().enumerate() {
            assert_eq!(e.field("window").unwrap().as_u64(), Some(i as u64));
            assert_eq!(e.field("final").unwrap().as_bool(), Some(i == windows.len() - 1));
        }
        assert_eq!(ob.pipeline.counter("requests"), reqs.len() as u64);
        assert_eq!(ob.pipeline.counter("admitted"), out.admitted() as u64);
    }

    #[test]
    fn injected_commit_hard_error_dumps_flight_ring() {
        let (net, cat) = setup();
        let reqs = make_requests(10, &cat, net.num_nodes(), 15);
        let dir = std::env::temp_dir().join(format!("relaug-flight-commit-{}", std::process::id()));
        let cfg = StreamConfig {
            flight: Some(FlightSpec::new(dir.clone())),
            inject_commit_hard_error_at: Some(7),
            ..Default::default()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_stream_seeded(&net, &cat, &reqs, &cfg, 19)
        }));
        assert!(result.is_err(), "injected commit hard error must panic");
        let dump =
            std::fs::read_to_string(dir.join("flight-commit.jsonl")).expect("flight dump written");
        let mut lines = dump.lines();
        let header = lines.next().expect("dump has a header line");
        assert!(header.contains("flight.dump"), "header line: {header}");
        assert!(header.contains("commit_hard_error_injected"), "header line: {header}");
        // One buffered stream.request event per request committed before the
        // injected failure at k = 7.
        assert_eq!(lines.count(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_cache_repeated_requests_hit_and_never_overcommit() {
        use mecnet::vnf::VnfTypeId;
        // One identical single-function request repeated far past saturation.
        // The same plan key recurs every time, so the run walks the whole
        // cache lifecycle: insert → epoch-skip hits → validation failure when
        // the plan stops fitting → full-scan rejection → watermark gate. A
        // single-function chain makes the endgame deterministic: admission
        // rejects exactly when every residual drops below the function's
        // demand, which is also exactly when the gate starts firing.
        let (net, cat) = setup();
        let reqs: Vec<SfcRequest> = (0..100)
            .map(|i| SfcRequest::new(i, vec![VnfTypeId(1)], 0.99, NodeId(3), NodeId(12)))
            .collect();
        let cfg = StreamConfig { plan_cache: 16, ..Default::default() };
        let (out, ob) =
            process_stream_seeded_observed(&net, &cat, &reqs, &cfg, 41, &mut Recorder::noop());
        let report = ob.plan_cache.expect("cache report present when enabled");
        assert!(report.hits > 0, "identical requests must hit: {report:?}");
        assert_eq!(
            report.epoch_skips, report.hits,
            "single-writer identical stream: every hit takes the epoch fast path"
        );
        assert!(
            report.validation_failures >= 1,
            "saturation must eventually invalidate the cached plan: {report:?}"
        );
        assert!(
            report.reject_hits > 0,
            "the watermark gate must take over after the first full-scan rejection: {report:?}"
        );
        // Every request was either gate-rejected, a hit, or a probe miss.
        assert_eq!(report.hits + report.reject_hits + report.misses, reqs.len() as u64);
        // No overcommit, ever: residuals stay within [0, capacity].
        for (&r, v) in out.final_residual.iter().zip(net.graph().nodes()) {
            assert!(r >= -1e-9, "node {v:?} residual went negative: {r}");
            assert!(r <= net.capacity(v) + 1e-9);
        }
        assert_eq!(out.records.len(), reqs.len());
        // Ledger == admissions: the shard-0 counters agree with the records.
        assert_eq!(ob.pipeline.counter("admitted"), out.admitted() as u64);
        assert_eq!(ob.pipeline.counter("requests"), reqs.len() as u64);
    }

    #[test]
    fn plan_cache_hits_revalidate_reliability_against_live_expectation() {
        use mecnet::vnf::VnfTypeId;
        // Two key-equal requests (same 1e-6 threshold bucket) where the
        // *exact* expectations differ within the bucket: a cached plan that
        // clears the first must still be re-checked against the second's
        // live expectation, never trusted from the stored flag.
        let (net, cat) = setup();
        // 0.99 and 0.99 + 4e-7 land in the same bucket (round to 990000).
        let reqs = vec![
            SfcRequest::new(0, vec![VnfTypeId(1)], 0.99, NodeId(3), NodeId(12)),
            SfcRequest::new(1, vec![VnfTypeId(1)], 0.990_000_4, NodeId(3), NodeId(12)),
        ];
        assert_eq!(
            crate::plancache::PlanKey::for_request(&reqs[0], 1),
            crate::plancache::PlanKey::for_request(&reqs[1], 1),
            "fixture requests must share a plan key"
        );
        let cfg = StreamConfig { plan_cache: 16, ..Default::default() };
        let (out, ob) =
            process_stream_seeded_observed(&net, &cat, &reqs, &cfg, 43, &mut Recorder::noop());
        // Whatever path each request took, an admitted record that claims
        // `met_expectation` must actually clear that request's expectation.
        for (r, req) in out.records.iter().zip(&reqs) {
            if r.admitted && r.met_expectation {
                assert!(
                    r.achieved_reliability >= req.expectation - 1e-12,
                    "request {} claims met_expectation at {} < {}",
                    r.id,
                    r.achieved_reliability,
                    req.expectation
                );
            }
        }
        let report = ob.plan_cache.expect("cache report present");
        assert_eq!(report.hits + report.reject_hits + report.misses, reqs.len() as u64);
    }

    #[test]
    #[should_panic(expected = "plan cache is incompatible with share_backups")]
    fn plan_cache_rejects_share_backups() {
        let (net, cat) = setup();
        let reqs = make_requests(2, &cat, net.num_nodes(), 50);
        let cfg = StreamConfig { plan_cache: 8, share_backups: true, ..Default::default() };
        let _ = process_stream_seeded(&net, &cat, &reqs, &cfg, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, cat) = setup();
        let reqs = make_requests(10, &cat, net.num_nodes(), 11);
        let run = || {
            let mut rng = StdRng::seed_from_u64(6);
            process_stream(&net, &cat, &reqs, &StreamConfig::default(), &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a.admitted(), b.admitted());
        assert_eq!(a.final_residual, b.final_residual);
    }
}

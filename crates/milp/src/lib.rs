//! A self-contained linear-programming and mixed-integer-linear-programming
//! solver.
//!
//! This crate exists because the reproduction of the ICPP 2020 paper
//! *"Reliability Augmentation of Requests with Service Function Chain
//! Requirements in Mobile Edge-Cloud Networks"* needs an exact ILP solver and a
//! plain LP solver (for the randomized-rounding algorithm), and no mature
//! pure-Rust MILP crate was available in the build environment. The instances
//! produced by that paper are small — a few hundred binary variables after the
//! `l`-hop locality restriction — so a carefully-tested textbook implementation
//! is entirely adequate:
//!
//! * [`Model`] — a builder for LPs/MILPs with variable bounds, integrality
//!   markers and `≤` / `≥` / `=` constraints.
//! * [`simplex`] — a sparse revised simplex (CSC matrix, LU + eta-file basis
//!   updates, bounded variables) over the computational form produced by
//!   [`standard_form`], with Bland's anti-cycling rule and a dual-simplex
//!   warm-start entry point ([`simplex::solve_lp_warm`]).
//! * [`branch_bound`] — best-first branch and bound for the integer variables,
//!   warm-starting each child node's LP from its parent's basis, returning
//!   provably optimal solutions (within tolerance) together with node counts
//!   so callers can report solver effort.
//!
//! # Quick example
//!
//! ```
//! use milp::{Model, Sense, Relation};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  0 <= x, y
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var(0.0, f64::INFINITY, 3.0);
//! let y = m.add_var(0.0, f64::INFINITY, 2.0);
//! m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! m.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
//! let sol = milp::solve_lp(&m).unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-6); // x = 4, y = 0
//! ```

pub mod branch_bound;
pub mod error;
pub mod io;
pub mod presolve;
pub mod problem;
pub mod simplex;
pub mod solution;
pub mod standard_form;

pub use branch_bound::{solve_milp, solve_milp_with, solve_milp_with_ws, BnbConfig, BnbStats};
pub use error::SolverError;
pub use problem::{ConstraintId, Model, Relation, Sense, VarId};
pub use simplex::{solve_lp, solve_lp_warm, BasisSnapshot, LpWorkspace};
pub use solution::{LpSolution, LpStatus, MilpSolution};

/// Absolute feasibility tolerance used throughout the crate.
pub const FEAS_TOL: f64 = 1e-8;
/// Tolerance below which a reduced cost is considered non-negative.
pub const COST_TOL: f64 = 1e-9;
/// Distance from an integer below which a value counts as integral.
pub const INT_TOL: f64 = 1e-6;

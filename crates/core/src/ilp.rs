//! The exact algorithm: the paper's Section 4 integer linear program, solved
//! to proven optimality by branch and bound.
//!
//! Two equivalent formulations are provided:
//!
//! * [`build_model`] — the paper's literal disaggregated variables
//!   `x_{i,k,u} ∈ {0,1}` ("the `k`-th secondary of `f_i` on cloudlet `u`"),
//!   with per-item exclusivity (constraint 8) and per-cloudlet capacity
//!   (constraints 9/11). This is the model whose **LP relaxation** Algorithm 1
//!   rounds, so it is kept verbatim.
//! * [`build_aggregated`] — an exact reformulation used for the *integer*
//!   solve: integer counts `n_{i,u}` (secondaries of `f_i` on `u`) plus a
//!   continuous "slot ladder" `z_{i,k} ∈ [0,1]` carrying the marginal
//!   log-gains, linked by `Σ_k z_{i,k} = Σ_u n_{i,u}`. Because gains strictly
//!   decrease in `k`, the LP always fills the ladder as a prefix, so at any
//!   integer `n` the objective equals the true log-reliability gain — and the
//!   formulation removes the item-permutation symmetry that makes the
//!   disaggregated branch-and-bound blow up on tight instances.
//!
//! The objective is the marginal log-gain linearization of Eq. 5 —
//! mathematically equivalent to minimizing `-log u_j` at integral optima
//! thanks to the prefix property of Lemma 4.2; see DESIGN.md for why the
//! literal Eq. 5–7 cost form cannot be minimized directly.

use std::time::Instant;

use milp::{BnbConfig, BnbStats, Model, Relation, Sense, SolverError, VarId};
use obs::Recorder;

use crate::instance::{AugmentationInstance, Item};
use crate::reliability;
use crate::solution::{Augmentation, Metrics, Outcome, SolverInfo};

/// Configuration of the exact solver.
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// Items whose marginal log-gain falls below this are not enumerated
    /// (lossless beyond this precision; `0.0` disables capping).
    pub gain_floor: f64,
    /// Branch-and-bound limits. `warm_start` is overwritten internally with a
    /// greedy incumbent.
    pub bnb: BnbConfig,
    /// Seed the branch and bound with the greedy solution (cheap, prunes
    /// most of the tree).
    pub warm_start: bool,
    /// After solving, trim surplus secondaries so the solution augments
    /// *until the expectation is reached* (Section 4.2's budget semantics)
    /// instead of saturating all capacity. Disable to keep the unconstrained
    /// optimum.
    pub stop_at_expectation: bool,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            gain_floor: 1e-12,
            bnb: BnbConfig { time_limit: Some(60.0), ..Default::default() },
            warm_start: true,
            stop_at_expectation: true,
        }
    }
}

/// The assembled disaggregated model plus the mapping from variables back to
/// (item, bin) decisions.
pub struct IlpModel {
    pub model: Model,
    /// `(item index into items, bin index, variable)`.
    pub vars: Vec<(usize, usize, VarId)>,
    pub items: Vec<Item>,
}

/// Build the paper's disaggregated placement ILP (Algorithm 1 rounds its LP
/// relaxation).
///
/// `target_cap = Some(g)` adds the budget row `Σ gain·x <= g` (the BMCGAP
/// budget `C` translated to gain space); use
/// [`AugmentationInstance::needed_gain`] for the paper's `C = -log ρ_j`.
pub fn build_model(
    inst: &AugmentationInstance,
    gain_floor: f64,
    target_cap: Option<f64>,
) -> IlpModel {
    let items = inst.items(gain_floor);
    let mut model = Model::new(Sense::Maximize);
    let mut vars = Vec::new();
    for (idx, item) in items.iter().enumerate() {
        let f = &inst.functions[item.func];
        let row: Vec<VarId> = f
            .eligible_bins
            .iter()
            .map(|&b| {
                // Upper bound left open: the per-item row enforces x <= 1, and
                // omitting explicit bounds keeps upper-bound rows out of the
                // simplex standard form.
                let v = model.add_integer_var(0.0, f64::INFINITY, item.gain);
                vars.push((idx, b, v));
                v
            })
            .collect();
        if !row.is_empty() {
            // Constraint (8): each item placed at most once.
            model.add_constraint(row.iter().map(|&v| (v, 1.0)).collect(), Relation::Le, 1.0);
        }
    }
    // Constraints (9)/(11): capacity per bin.
    let mut per_bin: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.bins.len()];
    for &(idx, b, v) in &vars {
        per_bin[b].push((v, inst.functions[items[idx].func].demand));
    }
    for (b, terms) in per_bin.into_iter().enumerate() {
        if !terms.is_empty() {
            model.add_constraint(terms, Relation::Le, inst.bins[b].residual);
        }
    }
    if let Some(cap) = target_cap {
        let terms: Vec<(VarId, f64)> =
            vars.iter().map(|&(idx, _, v)| (v, items[idx].gain)).collect();
        if !terms.is_empty() {
            model.add_constraint(terms, Relation::Le, cap);
        }
    }
    IlpModel { model, vars, items }
}

/// The aggregated exact formulation.
pub struct AggModel {
    pub model: Model,
    /// `(func, bin index, variable)` for the integer count variables.
    pub n_vars: Vec<(usize, usize, VarId)>,
    /// Per-function gain variable `G_i` (continuous; bounded above by the
    /// concave tangent cuts of the prefix-gain curve).
    pub g_vars: Vec<(usize, VarId)>,
    /// Per-function slot cap after gain-floor truncation.
    pub slot_cap: Vec<usize>,
}

/// Build the aggregated model (see module docs). `target_cap` as in
/// [`build_model`].
///
/// The concave prefix-gain curve `S_i(m) = Σ_{k<=m} g_i(k)` is encoded with
/// tangent cuts on a per-function gain variable `G_i`:
/// `G_i <= S_i(k-1) + g_i(k)·(T_i - (k-1))` for every slot `k`, where
/// `T_i = Σ_u n_{i,u}`. Gains decrease in `k`, so at any integer `T_i = m`
/// the binding cut yields exactly `G_i = S_i(m)` — the model is exact at
/// integral points and its LP relaxation is the concave envelope (the same
/// bound as the paper's disaggregated relaxation). All rows are `<=` with
/// non-negative right-hand sides, so the simplex never needs a phase-1.
pub fn build_aggregated(
    inst: &AugmentationInstance,
    gain_floor: f64,
    target_cap: Option<f64>,
) -> AggModel {
    let mut model = Model::new(Sense::Maximize);
    let mut n_vars = Vec::new();
    let mut g_vars = Vec::new();
    let mut slot_cap = Vec::with_capacity(inst.functions.len());
    for (i, f) in inst.functions.iter().enumerate() {
        let cap = f.capped_slots(gain_floor);
        slot_cap.push(cap);
        if cap == 0 {
            continue;
        }
        let ns: Vec<VarId> = f
            .eligible_bins
            .iter()
            .filter_map(|&b| {
                let per_bin = (inst.bins[b].residual / f.demand).floor() as usize;
                let ub = per_bin.min(cap);
                (ub > 0).then(|| {
                    let v = model.add_integer_var(0.0, ub as f64, 0.0);
                    n_vars.push((i, b, v));
                    v
                })
            })
            .collect();
        if ns.is_empty() {
            continue;
        }
        // Prefix gain sums S_i(0..=cap).
        let mut prefix = Vec::with_capacity(cap + 1);
        prefix.push(0.0f64);
        for k in 1..=cap {
            prefix
                .push(prefix[k - 1] + reliability::log_gain(f.reliability, f.existing_backups + k));
        }
        let g = model.add_var(0.0, prefix[cap], 1.0);
        g_vars.push((i, g));
        // Tangent cuts: G - g_i(k)·T <= S_i(k-1) - g_i(k)·(k-1). The k = 1 cut
        // has rhs 0; all rhs are >= 0 by concavity.
        for k in 1..=cap {
            let gain_k = reliability::log_gain(f.reliability, f.existing_backups + k);
            let mut terms: Vec<(VarId, f64)> = vec![(g, 1.0)];
            terms.extend(ns.iter().map(|&v| (v, -gain_k)));
            let rhs = prefix[k - 1] - gain_k * (k as f64 - 1.0);
            debug_assert!(rhs >= -1e-12);
            model.add_constraint(terms, Relation::Le, rhs.max(0.0));
        }
        // Do not pack more instances than enumerated slots (junk placements
        // would waste capacity without gain).
        model.add_constraint(ns.iter().map(|&v| (v, 1.0)).collect(), Relation::Le, cap as f64);
    }
    // Capacity per bin.
    let mut per_bin: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.bins.len()];
    for &(i, b, v) in &n_vars {
        per_bin[b].push((v, inst.functions[i].demand));
    }
    for (b, terms) in per_bin.into_iter().enumerate() {
        if !terms.is_empty() {
            model.add_constraint(terms, Relation::Le, inst.bins[b].residual);
        }
    }
    if let Some(cap) = target_cap {
        let terms: Vec<(VarId, f64)> = g_vars.iter().map(|&(_, v)| (v, 1.0)).collect();
        if !terms.is_empty() {
            model.add_constraint(terms, Relation::Le, cap);
        }
    }
    AggModel { model, n_vars, g_vars, slot_cap }
}

impl AggModel {
    /// Map an augmentation into a feasible point of this model (used for
    /// branch-and-bound warm starts).
    pub fn point_from_augmentation(
        &self,
        inst: &AugmentationInstance,
        aug: &Augmentation,
    ) -> Vec<f64> {
        let mut x = vec![0.0; self.model.num_vars()];
        for &(i, b, v) in &self.n_vars {
            if let Some(&(_, c)) = aug.placements_of(i).iter().find(|&&(bin, _)| bin == b) {
                // Clamp into the variable's bound (the warm solution may have
                // used more slots than the gain-floor cap enumerates).
                let (_, ub) = self.model.var_bounds(v);
                x[v.index()] = (c as f64).min(ub);
            }
        }
        // Recompute per-function totals actually representable, then set each
        // G_i to the prefix-gain value at that total (feasible under every
        // tangent cut by concavity).
        let mut totals = vec![0usize; inst.functions.len()];
        for &(i, _, v) in &self.n_vars {
            totals[i] += x[v.index()] as usize;
        }
        for &(i, v) in &self.g_vars {
            let m = totals[i].min(self.slot_cap[i]);
            let r = inst.functions[i].reliability;
            let e = inst.functions[i].existing_backups;
            let s: f64 = (1..=m).map(|k| crate::reliability::log_gain(r, e + k)).sum();
            x[v.index()] = s;
        }
        x
    }

    /// Convert a solved point into an augmentation.
    pub fn extract(&self, inst: &AugmentationInstance, x: &[f64]) -> Augmentation {
        let mut aug = Augmentation::empty(inst.chain_len());
        for &(i, b, v) in &self.n_vars {
            let c = x[v.index()].round() as usize;
            aug.add(i, b, c);
        }
        aug
    }
}

/// Convert a 0/1 solution of the disaggregated model into an
/// [`Augmentation`].
pub fn extract_augmentation(
    inst: &AugmentationInstance,
    ilp: &IlpModel,
    x: &[f64],
) -> Augmentation {
    let mut aug = Augmentation::empty(inst.chain_len());
    for &(idx, b, v) in &ilp.vars {
        if x[v.index()] > 0.5 {
            aug.add(ilp.items[idx].func, b, 1);
        }
    }
    aug
}

/// Partition the instance into independent components: two functions are
/// coupled iff their eligible bin sets intersect (directly or transitively).
/// Under the paper's `l = 1` locality the coupling graph is typically a
/// scatter of small clusters, and solving them separately turns the
/// branch-and-bound tree from a *product* of component trees into a *sum* —
/// often orders of magnitude fewer nodes.
fn decompose(inst: &AugmentationInstance) -> Vec<(Vec<usize>, Vec<usize>)> {
    // Union-find over bins.
    let mut parent: Vec<usize> = (0..inst.bins.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for f in &inst.functions {
        if let Some((&first, rest)) = f.eligible_bins.split_first() {
            let r0 = find(&mut parent, first);
            for &b in rest {
                let rb = find(&mut parent, b);
                parent[rb] = r0;
            }
        }
    }
    let mut comp_of_root = std::collections::HashMap::new();
    let mut comps: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    for b in 0..inst.bins.len() {
        let root = find(&mut parent, b);
        let idx = *comp_of_root.entry(root).or_insert_with(|| {
            comps.push((Vec::new(), Vec::new()));
            comps.len() - 1
        });
        comps[idx].1.push(b);
    }
    for (i, f) in inst.functions.iter().enumerate() {
        if let Some(&b) = f.eligible_bins.first() {
            let root = find(&mut parent, b);
            let idx = comp_of_root[&root];
            comps[idx].0.push(i);
        }
    }
    // Drop bin-only components (no function can use them).
    comps.retain(|(funcs, _)| !funcs.is_empty());
    comps
}

/// Solve one (sub-)instance to optimality, uncapped and without the
/// early-exit check. Returns the augmentation plus the full search stats.
fn solve_component(
    inst: &AugmentationInstance,
    cfg: &IlpConfig,
    ws: &mut milp::LpWorkspace,
) -> Result<(Augmentation, BnbStats), SolverError> {
    let agg = build_aggregated(inst, cfg.gain_floor, None);
    let mut bnb = cfg.bnb.clone();
    if cfg.warm_start {
        let warm = crate::greedy::solve(inst, &Default::default());
        bnb.warm_start = Some(agg.point_from_augmentation(inst, &warm.augmentation));
    }
    // Branch first on the count variables that move the most capacity.
    let mut priority = vec![0.0; agg.model.num_vars()];
    for &(i, _, v) in &agg.n_vars {
        priority[v.index()] = inst.functions[i].demand;
    }
    bnb.branch_priority = Some(priority);
    let sol = milp::solve_milp_with_ws(&agg.model, &bnb, ws)?;
    debug_assert!(sol.is_optimal(), "placement ILPs are always feasible (x = 0)");
    Ok((agg.extract(inst, &sol.x), sol.stats))
}

/// Solve the instance exactly. Returns the optimal augmentation, or the empty
/// augmentation immediately when the primaries already meet `ρ_j` (the
/// EXIT in line 2–3 of Algorithm 1, shared by the ILP path).
pub fn solve(inst: &AugmentationInstance, cfg: &IlpConfig) -> Result<Outcome, SolverError> {
    solve_traced(inst, cfg, &mut Recorder::noop())
}

/// [`solve`] with telemetry: emits one `ilp.component` event per independent
/// component (branch-and-bound nodes, simplex iterations, incumbent updates,
/// prune counts by reason) and accumulates the same quantities as counters.
pub fn solve_traced(
    inst: &AugmentationInstance,
    cfg: &IlpConfig,
    rec: &mut Recorder,
) -> Result<Outcome, SolverError> {
    let mut ws = milp::LpWorkspace::new();
    solve_with_ws(inst, cfg, rec, &mut ws)
}

/// [`solve_traced`] reusing the caller's scratch so the stream's exact path
/// allocates nothing per request: the LP workspace (factorization + eta-file
/// buffers) is shared across the instance's independent components and across
/// consecutive requests on the same stream/worker.
pub fn solve_scratch(
    inst: &AugmentationInstance,
    cfg: &IlpConfig,
    rec: &mut Recorder,
    scratch: &mut crate::scratch::SolveScratch,
) -> Result<Outcome, SolverError> {
    solve_with_ws(inst, cfg, rec, &mut scratch.lp)
}

fn solve_with_ws(
    inst: &AugmentationInstance,
    cfg: &IlpConfig,
    rec: &mut Recorder,
    ws: &mut milp::LpWorkspace,
) -> Result<Outcome, SolverError> {
    let started = Instant::now();
    if inst.expectation_met_by_primaries() {
        let aug = Augmentation::empty(inst.chain_len());
        let metrics = Metrics::compute(&aug, inst);
        rec.emit_with(|| {
            obs::Event::new("ilp.early_exit").with("base_reliability", metrics.base_reliability)
        });
        return Ok(Outcome {
            augmentation: aug,
            metrics,
            runtime: started.elapsed(),
            solver: SolverInfo::Ilp {
                nodes: 0,
                lp_iterations: 0,
                incumbent_updates: 0,
                pruned_bound: 0,
                pruned_infeasible: 0,
            },
            telemetry: rec.summary(),
        });
    }
    let comps = decompose(inst);
    rec.count("ilp.components", comps.len() as u64);
    let mut aug = Augmentation::empty(inst.chain_len());
    let mut stats = BnbStats::default();
    for (ci, (funcs, bins)) in comps.into_iter().enumerate() {
        // Build the sub-instance with remapped bin indices.
        let bin_map: std::collections::HashMap<usize, usize> =
            bins.iter().enumerate().map(|(local, &global)| (global, local)).collect();
        let sub = AugmentationInstance {
            functions: funcs
                .iter()
                .map(|&i| {
                    let f = &inst.functions[i];
                    crate::instance::FunctionSlot {
                        eligible_bins: f.eligible_bins.iter().map(|b| bin_map[b]).collect(),
                        ..f.clone()
                    }
                })
                .collect(),
            bins: bins.iter().map(|&b| inst.bins[b].clone()).collect(),
            l: inst.l,
            expectation: inst.expectation,
        };
        let comp_started = Instant::now();
        let (sub_aug, s) = solve_component(&sub, cfg, ws)?;
        let comp_elapsed = comp_started.elapsed();
        stats.nodes += s.nodes;
        stats.lp_iterations += s.lp_iterations;
        stats.incumbent_updates += s.incumbent_updates;
        stats.pruned_bound += s.pruned_bound;
        stats.pruned_infeasible += s.pruned_infeasible;
        rec.count("ilp.nodes", s.nodes as u64);
        rec.count("ilp.lp_iterations", s.lp_iterations as u64);
        rec.count("ilp.incumbent_updates", s.incumbent_updates as u64);
        rec.count("ilp.pruned_bound", s.pruned_bound as u64);
        rec.count("ilp.pruned_infeasible", s.pruned_infeasible as u64);
        rec.record_time("ilp.component_solve", comp_elapsed);
        rec.emit_with(|| {
            obs::Event::new("ilp.component")
                .with("component", ci)
                .with("functions", funcs.len())
                .with("bins", bins.len())
                .with("nodes", s.nodes)
                .with("lp_iterations", s.lp_iterations)
                .with("incumbent_updates", s.incumbent_updates)
                .with("pruned_bound", s.pruned_bound)
                .with("pruned_infeasible", s.pruned_infeasible)
                .with("secondaries", sub_aug.total_secondaries())
        });
        for (local_f, &global_f) in funcs.iter().enumerate() {
            for &(local_b, count) in sub_aug.placements_of(local_f) {
                aug.add(global_f, bins[local_b], count);
            }
        }
    }
    if cfg.stop_at_expectation {
        let trimmed = aug.trim_to_expectation(inst);
        rec.count("ilp.trimmed_secondaries", trimmed as u64);
    }
    debug_assert!(aug.is_capacity_feasible(inst));
    debug_assert!(aug.respects_locality(inst));
    let metrics = Metrics::compute(&aug, inst);
    Ok(Outcome {
        augmentation: aug,
        metrics,
        runtime: started.elapsed(),
        solver: SolverInfo::Ilp {
            nodes: stats.nodes,
            lp_iterations: stats.lp_iterations,
            incumbent_updates: stats.incumbent_updates,
            pruned_bound: stats.pruned_bound,
            pruned_infeasible: stats.pruned_infeasible,
        },
        telemetry: rec.summary(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Bin, FunctionSlot};
    use mecnet::graph::NodeId;
    use mecnet::vnf::VnfTypeId;

    fn slot(
        demand: f64,
        reliability: f64,
        eligible: Vec<usize>,
        max_secondaries: usize,
    ) -> FunctionSlot {
        FunctionSlot {
            vnf: VnfTypeId(0),
            demand,
            reliability,
            primary: NodeId(0),
            eligible_bins: eligible,
            max_secondaries,
            existing_backups: 0,
        }
    }

    /// One function, one bin with room for exactly 2 secondaries.
    fn single_function_instance() -> AugmentationInstance {
        AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0], 2)],
            bins: vec![Bin { node: NodeId(0), residual: 250.0 }],
            l: 1,
            expectation: 0.9999,
        }
    }

    #[test]
    fn fills_available_capacity() {
        let inst = single_function_instance();
        let out = solve(&inst, &IlpConfig::default()).unwrap();
        // Both secondaries fit (200 <= 250) and each adds gain: optimal m = 2.
        assert_eq!(out.augmentation.counts(), vec![2]);
        let expect = crate::reliability::function_reliability(0.8, 2);
        assert!((out.metrics.reliability - expect).abs() < 1e-9);
        assert!(out.augmentation.is_capacity_feasible(&inst));
    }

    #[test]
    fn early_exit_when_primaries_suffice() {
        let mut inst = single_function_instance();
        inst.expectation = 0.5; // base reliability 0.8 >= 0.5
        let out = solve(&inst, &IlpConfig::default()).unwrap();
        assert_eq!(out.metrics.total_secondaries, 0);
        assert_eq!(
            out.solver,
            SolverInfo::Ilp {
                nodes: 0,
                lp_iterations: 0,
                incumbent_updates: 0,
                pruned_bound: 0,
                pruned_infeasible: 0,
            }
        );
        assert!(out.telemetry.is_empty(), "untraced solve leaves telemetry empty");
    }

    #[test]
    fn traced_solve_reports_effort() {
        let inst = single_function_instance();
        let mut rec = Recorder::memory();
        let out = solve_traced(&inst, &IlpConfig::default(), &mut rec).unwrap();
        // One coupled component, at least one B&B node explored and recorded
        // identically in the counters, the events and the SolverInfo.
        assert_eq!(rec.counter("ilp.components"), 1);
        let SolverInfo::Ilp { nodes, lp_iterations, .. } = out.solver else {
            panic!("wrong solver info")
        };
        assert!(nodes >= 1);
        assert_eq!(out.telemetry.counter("ilp.nodes"), nodes as u64);
        assert_eq!(out.telemetry.counter("ilp.lp_iterations"), lp_iterations as u64);
        let comp_events: Vec<_> =
            rec.events().iter().filter(|e| e.kind == "ilp.component").collect();
        assert_eq!(comp_events.len(), 1);
        assert_eq!(comp_events[0].field("nodes").unwrap().as_u64(), Some(nodes as u64));
        assert!(out.telemetry.timing_s("ilp.component_solve") > 0.0);
    }

    #[test]
    fn capacity_forces_choice_between_functions() {
        // Two functions share one bin with room for exactly one instance.
        // The optimum backs up the *less* reliable function.
        let inst = AugmentationInstance {
            functions: vec![slot(200.0, 0.6, vec![0], 1), slot(200.0, 0.9, vec![0], 1)],
            bins: vec![Bin { node: NodeId(0), residual: 200.0 }],
            l: 1,
            expectation: 0.999999,
        };
        let out = solve(&inst, &IlpConfig::default()).unwrap();
        assert_eq!(out.augmentation.counts(), vec![1, 0]);
        assert!((out.metrics.reliability - 0.84 * 0.9).abs() < 1e-9);
    }

    #[test]
    fn optimum_is_brute_force_on_small_instance() {
        // 2 functions x 2 bins; enumerate all secondary-count allocations.
        let inst = AugmentationInstance {
            functions: vec![slot(150.0, 0.7, vec![0, 1], 3), slot(250.0, 0.8, vec![1], 1)],
            bins: vec![
                Bin { node: NodeId(0), residual: 300.0 },
                Bin { node: NodeId(1), residual: 400.0 },
            ],
            l: 1,
            expectation: 0.99999,
        };
        let out = solve(&inst, &IlpConfig::default()).unwrap();
        // Brute force over (a0, a1) = secondaries of f0 on bins 0/1 and b =
        // secondaries of f1 on bin 1.
        let mut best = 0.0f64;
        for a0 in 0..=2usize {
            for a1 in 0..=2usize {
                for b in 0..=1usize {
                    let bin0 = 150.0 * a0 as f64;
                    let bin1 = 150.0 * a1 as f64 + 250.0 * b as f64;
                    if bin0 <= 300.0 && bin1 <= 400.0 {
                        let rel = crate::reliability::function_reliability(0.7, a0 + a1)
                            * crate::reliability::function_reliability(0.8, b);
                        best = best.max(rel);
                    }
                }
            }
        }
        assert!(
            (out.metrics.reliability - best).abs() < 1e-9,
            "ilp {} vs brute {}",
            out.metrics.reliability,
            best
        );
    }

    #[test]
    fn no_bins_no_secondaries() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![], 0)],
            bins: vec![],
            l: 1,
            expectation: 0.99,
        };
        let out = solve(&inst, &IlpConfig::default()).unwrap();
        assert_eq!(out.metrics.total_secondaries, 0);
        assert!((out.metrics.reliability - 0.8).abs() < 1e-12);
        assert!(!out.metrics.met_expectation);
    }

    #[test]
    fn disaggregated_model_size() {
        let inst = single_function_instance();
        let m = build_model(&inst, 0.0, None);
        assert_eq!(m.items.len(), 2);
        assert_eq!(m.vars.len(), 2); // one eligible bin each
                                     // 2 item rows + 1 capacity row.
        assert_eq!(m.model.num_constraints(), 3);
    }

    #[test]
    fn aggregated_and_disaggregated_lp_bounds_agree() {
        let inst = AugmentationInstance {
            functions: vec![slot(150.0, 0.7, vec![0, 1], 3), slot(250.0, 0.8, vec![1], 1)],
            bins: vec![
                Bin { node: NodeId(0), residual: 300.0 },
                Bin { node: NodeId(1), residual: 400.0 },
            ],
            l: 1,
            expectation: 0.99999,
        };
        let dis = build_model(&inst, 1e-12, None);
        let agg = build_aggregated(&inst, 1e-12, None);
        let lp_d = milp::solve_lp(&dis.model.relax()).unwrap();
        let lp_a = milp::solve_lp(&agg.model.relax()).unwrap();
        assert!(
            (lp_d.objective - lp_a.objective).abs() < 1e-6,
            "dis {} vs agg {}",
            lp_d.objective,
            lp_a.objective
        );
    }

    #[test]
    fn warm_start_point_is_feasible() {
        let inst = AugmentationInstance {
            functions: vec![slot(150.0, 0.7, vec![0, 1], 3), slot(250.0, 0.8, vec![1], 1)],
            bins: vec![
                Bin { node: NodeId(0), residual: 300.0 },
                Bin { node: NodeId(1), residual: 400.0 },
            ],
            l: 1,
            expectation: 0.99999,
        };
        let agg = build_aggregated(&inst, 1e-12, None);
        let warm = crate::greedy::solve(&inst, &Default::default());
        let point = agg.point_from_augmentation(&inst, &warm.augmentation);
        assert!(agg.model.is_feasible(&point, 1e-6), "warm point must be feasible");
        // Round-trip: extracting the point reproduces the counts.
        let back = agg.extract(&inst, &point);
        assert_eq!(back.counts(), warm.augmentation.counts());
    }

    #[test]
    fn tight_capacity_instance_closes_quickly() {
        // A replica of the pathological regime: many functions, scarce shared
        // capacity. The aggregated model must prove optimality in few nodes.
        let mut functions = Vec::new();
        for j in 0..10 {
            let r = 0.8 + 0.01 * j as f64;
            functions.push(slot(200.0 + 20.0 * j as f64, r, vec![0, 1], 4));
        }
        let inst = AugmentationInstance {
            functions,
            bins: vec![
                Bin { node: NodeId(0), residual: 450.0 },
                Bin { node: NodeId(1), residual: 500.0 },
            ],
            l: 1,
            expectation: 0.999999,
        };
        let out = solve(&inst, &IlpConfig::default()).unwrap();
        if let SolverInfo::Ilp { nodes, .. } = out.solver {
            assert!(nodes < 5_000, "too many nodes: {nodes}");
        }
        assert!(out.augmentation.is_capacity_feasible(&inst));
    }
}

//! Domain scenario: a day of service — processing a stream of SFC requests
//! against one shared edge network.
//!
//! The paper augments one admitted request at a time; operators face a
//! *sequence*. This example pushes 120 requests through the paper-default
//! network with each algorithm and reports admission rate, mean achieved
//! reliability, and how reliability erodes for late arrivals as earlier
//! requests consume the backup capacity.
//!
//! Run with: `cargo run --release --example request_stream`

use mec_sfc_reliability::mecnet::request::SfcRequest;
use mec_sfc_reliability::mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use mec_sfc_reliability::relaug::stream::{process_stream, Algorithm, StreamConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = WorkloadConfig::default();
    let mut rng = StdRng::seed_from_u64(99);
    let network = generate_network(&config, &mut rng);
    let catalog = generate_catalog(&config, &mut rng);
    let requests: Vec<SfcRequest> = (0..120)
        .map(|i| SfcRequest::random(i, &catalog, (3, 6), 0.99, config.nodes, &mut rng))
        .collect();

    println!(
        "network: {} cloudlets, {:.0} MHz total capacity; {} arriving requests\n",
        network.num_cloudlets(),
        network.total_capacity(),
        requests.len()
    );
    println!(
        "{:<12} {:>9} {:>10} {:>12} {:>14} {:>16}",
        "algorithm", "admitted", "rejected", "mean rel.", "SLO-met rate", "1st vs last 3rd"
    );
    for (name, algorithm, share) in [
        ("ILP", Algorithm::Ilp(Default::default()), false),
        ("Randomized", Algorithm::Randomized(Default::default()), false),
        ("Heuristic", Algorithm::Heuristic(Default::default()), false),
        ("Greedy", Algorithm::Greedy(Default::default()), false),
        ("Heur+share", Algorithm::Heuristic(Default::default()), true),
    ] {
        let mut rng = StdRng::seed_from_u64(7); // same arrivals for each algorithm
        let cfg = StreamConfig { algorithm, share_backups: share, ..Default::default() };
        let out = process_stream(&network, &catalog, &requests, &cfg, &mut rng);
        let admitted: Vec<_> = out.records.iter().filter(|r| r.admitted).collect();
        let third = (admitted.len() / 3).max(1);
        let mean = |slice: &[&mec_sfc_reliability::relaug::stream::RequestRecord]| {
            slice.iter().map(|r| r.achieved_reliability).sum::<f64>() / slice.len().max(1) as f64
        };
        let first = mean(&admitted[..third.min(admitted.len())]);
        let last = mean(&admitted[admitted.len().saturating_sub(third)..]);
        println!(
            "{:<12} {:>9} {:>10} {:>12.4} {:>13.0}% {:>9.4}/{:.4}",
            name,
            out.admitted(),
            out.rejected(),
            out.mean_reliability().unwrap_or(0.0),
            100.0 * out.expectation_rate().unwrap_or(0.0),
            first,
            last,
        );
    }
    println!(
        "\nThe last column shows the streaming effect the single-request\n\
         experiments cannot: early arrivals lock in backups, late arrivals\n\
         find the neighborhoods around their primaries already drained.\n\
         The Heur+share row lets requests reuse instances of the same VNF\n\
         type deployed earlier (Qu et al.-style sharing)."
    );
}

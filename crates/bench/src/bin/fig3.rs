//! Regenerates Fig. 3 of the paper: performance of ILP / Randomized /
//! Heuristic while the residual computing capacity of each cloudlet varies
//! over 1/16, 1/8, 1/4, 1/2, 1 of its capacity (SFC length 3–10, function
//! reliabilities in [0.8, 0.9], `l = 1`).
//!
//! Usage: `cargo run -p bench-harness --release --bin fig3 -- [--trials N]
//! [--seed S] [--threads T] [--json PATH] [--greedy] [--no-ilp]`

use bench_harness::{render_figure, run_point, sweeps, to_json, HarnessArgs};

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fig3: {e}");
            std::process::exit(2);
        }
    };
    println!("## Fig. 3 — varying the residual computing capacity from 1/16 to 1");
    println!("({} trials/point, seed {}, {} threads)\n", args.trials, args.seed, args.threads);
    let mut points = Vec::new();
    for fraction in sweeps::fig3_fractions() {
        let cfg = args.apply(sweeps::fig3_point(fraction, args.trials, args.seed));
        let started = std::time::Instant::now();
        let res = run_point(&cfg);
        eprintln!("  point C'={fraction:.4} done in {:.1} s", started.elapsed().as_secs_f64());
        points.push(res);
    }
    println!("{}", render_figure(&points));
    if let Some(path) = &args.json {
        std::fs::write(path, to_json(&points)).expect("write JSON");
        eprintln!("wrote {path}");
    }
}

//! Domain scenario: capacity crunch during a flash crowd.
//!
//! During a stadium event the edge cloudlets around the venue are nearly
//! saturated; only a sliver of residual capacity is left for reliability
//! backups. This example sweeps the residual fraction downward and shows how
//! each algorithm degrades — the single-request version of the paper's
//! Fig. 3 — and how often the randomized algorithm's capacity violations
//! would actually overload a cloudlet.
//!
//! Run with: `cargo run --release --example capacity_crunch`

use mec_sfc_reliability::mecnet::workload::{generate_scenario, WorkloadConfig};
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::{greedy, heuristic, ilp, randomized};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!(
        "{:<10} {:>9} {:>11} {:>10} {:>9} {:>16}",
        "residual", "ILP", "Randomized", "Heuristic", "Greedy", "rand max usage"
    );
    for &fraction in &[0.5, 0.25, 0.125, 0.0625, 0.03125] {
        let config = WorkloadConfig {
            residual_fraction: fraction,
            sfc_len_range: (8, 8),
            expectation: 0.999,
            ..Default::default()
        };
        // Average a handful of flash-crowd scenarios.
        let trials = 10;
        let mut sums = [0.0f64; 4];
        let mut usage = 0.0f64;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            let scenario = generate_scenario(&config, &mut rng);
            let inst = AugmentationInstance::from_scenario(&scenario, 1);
            sums[0] += ilp::solve(&inst, &Default::default()).unwrap().metrics.reliability;
            let r = randomized::solve(&inst, &Default::default(), &mut rng).unwrap();
            sums[1] += r.metrics.reliability;
            usage += r.metrics.max_usage;
            sums[2] += heuristic::solve(&inst, &Default::default()).metrics.reliability;
            sums[3] += greedy::solve(&inst, &Default::default()).metrics.reliability;
        }
        let n = trials as f64;
        println!(
            "{:<10} {:>9.4} {:>11.4} {:>10.4} {:>9.4} {:>15.2}x",
            format!("{:.4}", fraction),
            sums[0] / n,
            sums[1] / n,
            sums[2] / n,
            sums[3] / n,
            usage / n
        );
    }
    println!(
        "\nReading the last column: values above 1.0 mean the randomized\n\
         algorithm overcommitted at least one cloudlet — admissible in the\n\
         paper's model (Theorem 5.2 bounds it by 2x w.h.p.), but an operator\n\
         would need headroom or preemption to absorb it. The heuristic column\n\
         never needs either."
    );
}

//! The simulator's event queue: a binary heap keyed by simulation time with
//! a monotone sequence number as tie-breaker, so two events at the same
//! instant always pop in the order they were scheduled — the property that
//! makes whole runs bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A new request arrives (its content is drawn at processing time from
    /// the workload RNG, so the stream is identical across repair policies).
    Arrival,
    /// Request `request` finishes service and departs.
    Departure { request: usize },
    /// Instance `instance` goes down. `epoch` guards against stale clocks:
    /// the event is ignored unless it matches the instance's current epoch.
    InstanceFailure { instance: usize, epoch: u64 },
    /// Instance `instance` comes back up.
    InstanceRepair { instance: usize, epoch: u64 },
    /// Periodic audit of degraded requests (audit-style repair policies).
    AuditTick,
}

/// One scheduled event.
#[derive(Debug, Clone)]
pub struct SimEvent {
    pub time: f64,
    /// Scheduling order, assigned by the queue; breaks time ties.
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for SimEvent {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq && self.time.total_cmp(&other.time) == Ordering::Equal
    }
}

impl Eq for SimEvent {}

impl Ord for SimEvent {
    /// Reverse chronological order so `BinaryHeap` (a max-heap) pops the
    /// earliest event; among equal times, the earliest-scheduled wins.
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for SimEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The future event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<SimEvent>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedule `kind` at absolute time `time` (must be finite and >= 0).
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite() && time >= 0.0, "event time must be finite and >= 0");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(SimEvent { time, seq, kind });
    }

    /// Pop the earliest event (FIFO among simultaneous events).
    pub fn pop(&mut self) -> Option<SimEvent> {
        self.heap.pop()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, EventKind::AuditTick);
        q.push(1.0, EventKind::Arrival);
        q.push(2.0, EventKind::Departure { request: 0 });
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().time, 1.0);
        assert_eq!(q.pop().unwrap().time, 2.0);
        assert_eq!(q.pop().unwrap().time, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5.0, EventKind::Departure { request: i });
        }
        for i in 0..10 {
            match q.pop().unwrap().kind {
                EventKind::Departure { request } => assert_eq!(request, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn interleaved_ties_stay_deterministic() {
        let run = || {
            let mut q = EventQueue::new();
            q.push(1.0, EventKind::Arrival);
            q.push(1.0, EventKind::AuditTick);
            q.push(0.5, EventKind::Departure { request: 9 });
            let mut order = Vec::new();
            while let Some(e) = q.pop() {
                order.push((e.time.to_bits(), e.seq));
            }
            order
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, EventKind::Arrival);
    }
}

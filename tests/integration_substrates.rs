//! Cross-substrate validation: the LP/MILP solver and the matching library
//! are independent implementations that must agree on problems both can
//! express.

use mec_sfc_reliability::matching::{hungarian, min_cost_max_matching};
use mec_sfc_reliability::milp::{solve_lp, solve_milp, Model, Relation, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The assignment polytope is integral: the *LP relaxation* of the
/// assignment problem solved by simplex must match the Hungarian algorithm
/// exactly.
#[test]
fn simplex_on_assignment_polytope_matches_hungarian() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..=6);
        let cost: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect()).collect();

        let mut m = Model::new(Sense::Minimize);
        let mut vars = vec![vec![]; n];
        for (vrow, crow) in vars.iter_mut().zip(&cost) {
            for &c in crow.iter().take(n) {
                vrow.push(m.add_var(0.0, f64::INFINITY, c));
            }
        }
        for (i, vrow) in vars.iter().enumerate() {
            m.add_constraint(vrow.iter().map(|&v| (v, 1.0)).collect(), Relation::Eq, 1.0);
            m.add_constraint((0..n).map(|j| (vars[j][i], 1.0)).collect(), Relation::Eq, 1.0);
        }
        let lp = solve_lp(&m).unwrap();
        let hung = hungarian::solve(&cost).unwrap();
        assert!(
            (lp.objective - hung.cost).abs() < 1e-6,
            "seed {seed}: simplex {} vs hungarian {}",
            lp.objective,
            hung.cost
        );
        // Birkhoff-von-Neumann: the simplex vertex is a permutation matrix.
        for row in &vars {
            for &v in row {
                let x = lp.x[v.index()];
                assert!(x < 1e-6 || (x - 1.0).abs() < 1e-6, "fractional vertex {x}");
            }
        }
    }
}

/// Min-cost maximum matching on a sparse bipartite graph vs the equivalent
/// MILP (maximize cardinality first via a large per-edge bonus, then
/// minimize cost).
#[test]
fn flow_matching_matches_milp_formulation() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let nl = rng.gen_range(2..=4);
        let nr = rng.gen_range(2..=4);
        let mut edges = Vec::new();
        for l in 0..nl {
            for r in 0..nr {
                if rng.gen::<f64>() < 0.6 {
                    edges.push((l, r, rng.gen_range(0.5..8.0)));
                }
            }
        }
        let matching = min_cost_max_matching(nl, nr, &edges);

        // MILP: maximize BONUS*selected - cost so cardinality dominates.
        const BONUS: f64 = 1_000.0;
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = edges.iter().map(|&(_, _, c)| m.add_binary_var(BONUS - c)).collect();
        for l in 0..nl {
            let terms: Vec<_> = edges
                .iter()
                .zip(&vars)
                .filter(|((el, _, _), _)| *el == l)
                .map(|(_, &v)| (v, 1.0))
                .collect();
            if !terms.is_empty() {
                m.add_constraint(terms, Relation::Le, 1.0);
            }
        }
        for r in 0..nr {
            let terms: Vec<_> = edges
                .iter()
                .zip(&vars)
                .filter(|((_, er, _), _)| *er == r)
                .map(|(_, &v)| (v, 1.0))
                .collect();
            if !terms.is_empty() {
                m.add_constraint(terms, Relation::Le, 1.0);
            }
        }
        let milp_sol = solve_milp(&m).unwrap();
        let milp_card = (milp_sol.objective / BONUS).round() as usize;
        let milp_cost = BONUS * milp_card as f64 - milp_sol.objective;
        assert_eq!(matching.cardinality(), milp_card, "seed {seed}: cardinality mismatch");
        assert!(
            (matching.cost - milp_cost).abs() < 1e-6,
            "seed {seed}: flow cost {} vs milp cost {}",
            matching.cost,
            milp_cost
        );
    }
}

/// The LP relaxation of a bipartite matching problem is integral, so simplex
/// alone (no branching) must already reproduce the flow solver's optimum.
#[test]
fn matching_lp_relaxation_is_integral() {
    let edges =
        [(0usize, 0usize, 2.0f64), (0, 1, 5.0), (1, 0, 4.0), (1, 2, 1.0), (2, 1, 3.0), (2, 2, 6.0)];
    let matching = min_cost_max_matching(3, 3, &edges);
    assert_eq!(matching.cardinality(), 3);

    const BONUS: f64 = 100.0;
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = edges.iter().map(|&(_, _, c)| m.add_var(0.0, 1.0, BONUS - c)).collect();
    for side in 0..2 {
        for node in 0..3 {
            let terms: Vec<_> = edges
                .iter()
                .zip(&vars)
                .filter(|((l, r, _), _)| if side == 0 { *l == node } else { *r == node })
                .map(|(_, &v)| (v, 1.0))
                .collect();
            m.add_constraint(terms, Relation::Le, 1.0);
        }
    }
    let lp = solve_lp(&m).unwrap();
    let lp_cost = BONUS * 3.0 - lp.objective;
    assert!((lp_cost - matching.cost).abs() < 1e-6);
}

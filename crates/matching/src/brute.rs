//! Exponential exact min-cost maximum matching, the property-test oracle.
//!
//! Enumerates all matchings by recursion over left nodes. Only usable for
//! graphs with a handful of nodes; the production solvers are validated
//! against it on randomly generated small instances.

/// Exact minimum-cost maximum matching by exhaustive search.
///
/// Returns `(cardinality, cost)` of the optimum. Intended for tests.
pub fn min_cost_max_matching_exact(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize, f64)],
) -> (usize, f64) {
    assert!(n_right < 64, "brute force supports < 64 right nodes");
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_left];
    for &(l, r, c) in edges {
        assert!(l < n_left && r < n_right);
        adj[l].push((r, c));
    }
    let mut best: (usize, f64) = (0, 0.0);
    recurse(0, 0u64, 0, 0.0, &adj, &mut best);
    best
}

fn recurse(
    l: usize,
    used_right: u64,
    card: usize,
    cost: f64,
    adj: &[Vec<(usize, f64)>],
    best: &mut (usize, f64),
) {
    if l == adj.len() {
        if card > best.0 || (card == best.0 && cost < best.1 - 1e-12) {
            *best = (card, cost);
        }
        return;
    }
    // Leave l unmatched.
    recurse(l + 1, used_right, card, cost, adj, best);
    // Match l to each free neighbor.
    for &(r, c) in &adj[l] {
        if used_right & (1 << r) == 0 {
            recurse(l + 1, used_right | (1 << r), card + 1, cost + c, adj, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hand_example() {
        let edges = [(0, 0, 1.0), (0, 1, 4.0), (1, 0, 2.0), (1, 1, 1.5)];
        let (card, cost) = min_cost_max_matching_exact(2, 2, &edges);
        assert_eq!(card, 2);
        assert!((cost - 2.5).abs() < 1e-9);
    }

    #[test]
    fn maximum_trumps_cost() {
        let edges = [(0, 0, 0.1), (0, 1, 5.0), (1, 0, 5.0)];
        let (card, cost) = min_cost_max_matching_exact(2, 2, &edges);
        assert_eq!(card, 2);
        assert!((cost - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(min_cost_max_matching_exact(3, 3, &[]), (0, 0.0));
    }
}

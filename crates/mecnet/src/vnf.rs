//! Network-function catalog: the set `F` of VNF types with per-instance
//! computing demands `c(f_i)` (MHz) and reliabilities `r_i`.

use rand::Rng;

/// Index of a VNF type in a [`VnfCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VnfTypeId(pub usize);

impl VnfTypeId {
    pub fn index(self) -> usize {
        self.0
    }
}

/// A network-function type.
#[derive(Debug, Clone, PartialEq)]
pub struct VnfType {
    pub name: String,
    /// Computing demand of one instance, in MHz (paper: 200–400 MHz).
    pub demand_mhz: f64,
    /// Reliability of any single instance, `0 < r <= 1` (identical across
    /// cloudlets, the standard assumption the paper adopts).
    pub reliability: f64,
}

/// The catalog `F = {f_1, …, f_|F|}`.
#[derive(Debug, Clone, Default)]
pub struct VnfCatalog {
    types: Vec<VnfType>,
}

impl VnfCatalog {
    pub fn new() -> Self {
        VnfCatalog { types: Vec::new() }
    }

    /// Add a type; panics on non-positive demand or reliability outside
    /// `(0, 1]`.
    pub fn add(&mut self, vnf: VnfType) -> VnfTypeId {
        assert!(vnf.demand_mhz > 0.0, "demand must be positive");
        assert!(
            vnf.reliability > 0.0 && vnf.reliability <= 1.0,
            "reliability must be in (0, 1], got {}",
            vnf.reliability
        );
        let id = VnfTypeId(self.types.len());
        self.types.push(vnf);
        id
    }

    pub fn len(&self) -> usize {
        self.types.len()
    }

    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    pub fn get(&self, id: VnfTypeId) -> &VnfType {
        &self.types[id.0]
    }

    pub fn demand(&self, id: VnfTypeId) -> f64 {
        self.types[id.0].demand_mhz
    }

    pub fn reliability(&self, id: VnfTypeId) -> f64 {
        self.types[id.0].reliability
    }

    pub fn ids(&self) -> impl Iterator<Item = VnfTypeId> + '_ {
        (0..self.types.len()).map(VnfTypeId)
    }

    pub fn iter(&self) -> impl Iterator<Item = (VnfTypeId, &VnfType)> + '_ {
        self.types.iter().enumerate().map(|(i, t)| (VnfTypeId(i), t))
    }

    /// Smallest per-instance demand in the catalog (`c_min` of Theorem 6.2).
    pub fn min_demand(&self) -> Option<f64> {
        self.types.iter().map(|t| t.demand_mhz).min_by(|a, b| a.total_cmp(b))
    }

    /// Random catalog per the paper's Section 7.1: `count` types with demands
    /// uniform in `demand_range` MHz and reliabilities uniform in
    /// `reliability_range`.
    pub fn random<R: Rng + ?Sized>(
        count: usize,
        demand_range: (f64, f64),
        reliability_range: (f64, f64),
        rng: &mut R,
    ) -> Self {
        assert!(count > 0, "catalog must not be empty");
        assert!(demand_range.0 > 0.0 && demand_range.0 <= demand_range.1);
        assert!(reliability_range.0 > 0.0 && reliability_range.1 <= 1.0);
        assert!(reliability_range.0 <= reliability_range.1);
        let mut cat = VnfCatalog::new();
        for i in 0..count {
            cat.add(VnfType {
                name: format!("f{i}"),
                demand_mhz: rng.gen_range(demand_range.0..=demand_range.1),
                reliability: rng.gen_range(reliability_range.0..=reliability_range.1),
            });
        }
        cat
    }
}

/// A small named catalog of realistic middlebox functions, used by the
/// examples (demands in the paper's 200–400 MHz band).
pub fn realistic_catalog() -> VnfCatalog {
    let mut cat = VnfCatalog::new();
    for (name, demand, rel) in [
        ("NAT", 200.0, 0.90),
        ("Firewall", 300.0, 0.88),
        ("IDS", 400.0, 0.85),
        ("LoadBalancer", 250.0, 0.92),
        ("WAN-Optimizer", 350.0, 0.86),
        ("Transcoder", 400.0, 0.84),
        ("DPI", 380.0, 0.87),
        ("Proxy", 220.0, 0.91),
    ] {
        cat.add(VnfType { name: name.to_string(), demand_mhz: demand, reliability: rel });
    }
    cat
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_query() {
        let mut cat = VnfCatalog::new();
        let id = cat.add(VnfType { name: "fw".into(), demand_mhz: 300.0, reliability: 0.9 });
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.demand(id), 300.0);
        assert_eq!(cat.reliability(id), 0.9);
        assert_eq!(cat.get(id).name, "fw");
    }

    #[test]
    #[should_panic(expected = "reliability")]
    fn rejects_zero_reliability() {
        VnfCatalog::new().add(VnfType { name: "x".into(), demand_mhz: 1.0, reliability: 0.0 });
    }

    #[test]
    #[should_panic(expected = "demand")]
    fn rejects_nonpositive_demand() {
        VnfCatalog::new().add(VnfType { name: "x".into(), demand_mhz: 0.0, reliability: 0.5 });
    }

    #[test]
    fn random_catalog_respects_ranges() {
        let mut rng = StdRng::seed_from_u64(42);
        let cat = VnfCatalog::random(30, (200.0, 400.0), (0.8, 0.9), &mut rng);
        assert_eq!(cat.len(), 30);
        for (_, t) in cat.iter() {
            assert!((200.0..=400.0).contains(&t.demand_mhz));
            assert!((0.8..=0.9).contains(&t.reliability));
        }
        let min = cat.min_demand().unwrap();
        assert!(min >= 200.0);
        assert!(cat.iter().all(|(_, t)| t.demand_mhz >= min));
    }

    #[test]
    fn realistic_catalog_is_valid() {
        let cat = realistic_catalog();
        assert_eq!(cat.len(), 8);
        assert!(cat.iter().all(|(_, t)| t.reliability > 0.8 && t.demand_mhz >= 200.0));
    }
}

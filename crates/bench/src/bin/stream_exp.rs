//! Multi-request stream experiment (extension beyond the paper's
//! single-request evaluation): push a stream of requests through one shared
//! network per algorithm and report admission rate, mean reliability,
//! expectation-met rate, throughput, and the early-vs-late reliability
//! erosion.
//!
//! Usage: `cargo run -p bench-harness --release --bin stream_exp --
//! [--trials N] [--seed S] [--requests R] [--trace PATH] [--workers W]
//! [--batch B] [--metrics-interval N|Xs] [--flight DIR]
//! [--scenario NAME|PATH] [--commit-order deterministic|relaxed]
//! [--shards K] [--plan-cache N]` (trials = independent network/stream
//! pairs).
//!
//! `--plan-cache N` (default 0 = off) arms the admission plan cache
//! (`relaug::plancache`): solved plans are memoized by `(source, chain
//! signature, threshold bucket, l)` and every hit is re-validated against
//! live residuals and the live reliability threshold before it is applied —
//! a cache can change which requests are admitted (only ever
//! conservatively), so cached runs are oracle-checked rather than
//! byte-identical and the record-hash column is not comparable to uncached
//! runs. A cache-plane table (hits, epoch skips, gate rejects, misses,
//! stale validations, evictions, hit rates) is appended to the report, and
//! each algorithm prints a parseable `<algo> plan cache: hit-rate …` line.
//!
//! `--commit-order relaxed` switches to the sharded-capacity engine
//! (`relaug::relaxed`): cloudlets are partitioned into `K` locality shards
//! (`--shards`, default one per worker), shard-local requests commit
//! lock-free on their owning worker, and records arrive in completion
//! order. Every relaxed run is linearization-verified — the commit log is
//! replayed sequentially and checked against the final atomic residuals —
//! and the verdict is printed as `<algo> linearization: OK (...)` (a failed
//! replay aborts the run with a nonzero exit). The scenario table's hash
//! column switches to the order-insensitive admitted-set hash, and a
//! per-shard contention table is appended to the report.
//!
//! Without `--scenario` the harness runs the toy fixture: one
//! `WorkloadConfig::default()` network per trial and uniformly random
//! requests. `--scenario` switches to the scenario-zoo path: the spec (a
//! preset name such as `sagin-1k`, or a JSON file) is built once and a lazy
//! [`scen::RequestStream`] synthesizes the request stream — Poisson
//! arrivals, diurnal load, flash crowds, popularity-skewed endpoints —
//! deterministically from the spec seed. In both modes requests are
//! generated lazily and folded into bounded [`StreamStats`] as records are
//! committed, so resident memory stays O(dispatch window) regardless of
//! `--requests`; the run footer reports the process peak RSS as evidence.
//!
//! `--metrics-interval` switches the observed (first) stream of each
//! algorithm to windowed telemetry: per-request events are suppressed and
//! one `stream.window` summary is emitted per `N` requests (or `X` wall
//! seconds), so a million-request trace stays bounded. `--flight DIR` arms
//! flight recorders: every engine thread keeps a ring of recent raw events,
//! dumped to `DIR/flight-*.jsonl` on panic or commit hard-error
//! (`RELAUG_INJECT_COMMIT_HARD_ERROR=K` injects one at request `K` for
//! smoke-testing the dump path). A per-worker contention table — solve time
//! vs job-wait vs commit-wait, plus stale-speculation counts — is printed at
//! the end of every run.
//!
//! `--workers W` (default 1) runs each stream through the speculative
//! parallel admission pipeline with `W` worker threads; `--workers auto`
//! resolves to the machine's effective parallelism. At `--workers 1` —
//! including `auto` on a single-core box, so `auto` never picks the slower
//! engine — the binary takes a sequential fast path: the seeded stream
//! driver directly, no channels or snapshots. `--batch B` sets the
//! requests-per-speculation-batch (default 0 = auto: the dispatch window
//! split evenly across workers). Results and telemetry are byte-identical across all engine
//! configurations by construction — the flags only change wall-clock time.
//! The header line `engine: …` records which path ran (stdout only; it never
//! appears in the JSONL trace). The `record hash` column (scenario mode) is
//! an order-sensitive FNV-1a fold over every emitted record, so two runs can
//! be compared for byte-identity without storing the records.
//!
//! `--trace PATH` writes the full telemetry of each algorithm's first stream
//! as JSONL: exactly one `stream.request` event per request processed (with
//! admitted/rejected + reason, solver runtime and a residual snapshot), with
//! the per-request solver events interleaved in arrival order. A telemetry
//! summary table — including per-request solve-time p50/p95/p99 from the
//! recorder's in-memory samples — is printed at the end of every run,
//! traced or not.

use std::time::Instant;

use bench_harness::{
    fold_admitted_set_hash, fold_record_hash, HarnessArgs, StreamStats, RECORD_HASH_SEED,
};
use expkit::stats::Accumulator;
use expkit::Table;
use mecnet::network::MecNetwork;
use mecnet::request::SfcRequest;
use mecnet::vnf::VnfCatalog;
use mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use obs::{MetricsSnapshot, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::parallel::{process_stream_metered_sink, CommitOrder, ParallelConfig};
use relaug::relaxed::{process_stream_relaxed_reported, RelaxedReport};
use relaug::stream::{
    process_stream_seeded_sink, Algorithm, FlightSpec, MetricsMode, RequestRecord, StreamConfig,
    StreamObservation,
};
use scen::{RequestStream, ScenarioSpec};

/// The observability config for the first stream of each algorithm:
/// `--metrics-interval` switches the pipeline to windowed aggregation,
/// `--flight` attaches flight rings, and the injection env var arms the
/// commit hard-error.
fn observed_config(
    mut cfg: StreamConfig,
    args: &HarnessArgs,
    inject_at: Option<usize>,
) -> StreamConfig {
    if let Some(interval) = args.metrics_interval {
        cfg.metrics = MetricsMode::Windowed(interval);
    }
    if let Some(dir) = &args.flight {
        cfg.flight = Some(FlightSpec::new(std::path::PathBuf::from(dir)));
    }
    cfg.inject_commit_hard_error_at = inject_at;
    cfg
}

/// Sum of a snapshot histogram's recorded nanoseconds, as seconds.
fn hist_s(snap: &MetricsSnapshot, name: &str) -> f64 {
    snap.hist(name).map(|h| h.sum() as f64 / 1e9).unwrap_or(0.0)
}

/// Per-worker contention attribution of one observed stream: where each
/// thread's time went (solving vs waiting) and which workers' speculations
/// went stale.
fn contention_table(observations: &[(&str, StreamObservation)]) -> Table {
    let mut table = Table::new(vec![
        "algorithm",
        "role",
        "solves",
        "solve time",
        "job wait",
        "commit wait",
        "coord wait",
        "conflicts",
    ]);
    let fmt = expkit::table::fmt_duration_s;
    for (name, ob) in observations {
        let p = &ob.pipeline;
        table.add_row(vec![
            name.to_string(),
            "coordinator".into(),
            format!("{} inline", p.counter("solves")),
            fmt(hist_s(p, "solve_ns")),
            "-".into(),
            "-".into(),
            fmt(hist_s(p, "coordinator_recv_wait_ns")),
            "-".into(),
        ]);
        for (w, shard) in ob.per_worker.iter().enumerate() {
            table.add_row(vec![
                name.to_string(),
                format!("worker {w}"),
                format!("{}", shard.counter("solves")),
                fmt(hist_s(shard, "solve_ns")),
                fmt(hist_s(shard, "job_wait_ns")),
                fmt(hist_s(shard, "commit_wait_ns")),
                "-".into(),
                format!("{}", shard.counter("speculation.conflicts")),
            ]);
        }
    }
    table
}

/// Per-stream fold state the sink writes into as records are produced:
/// the order-sensitive hash (deterministic engines), the order-insensitive
/// admitted-set hash (what relaxed runs are compared by), and — relaxed
/// only — the engine's report with the linearization verdict.
struct RunArtifacts {
    hash: u64,
    set_hash: u64,
    relaxed: Option<RelaxedReport>,
}

impl RunArtifacts {
    fn new() -> RunArtifacts {
        RunArtifacts { hash: RECORD_HASH_SEED, set_hash: 0, relaxed: None }
    }
}

/// Drive one lazy request stream through the configured engine, folding every
/// committed record into `stats` and the record hashes as it is produced —
/// nothing is retained per request. Returns the final residual and the
/// sharded-metrics observation. `--commit-order relaxed` routes through the
/// sharded-capacity engine with the commit log enabled, so every run is
/// linearization-verified (the verdict lands in `art.relaxed`).
#[allow(clippy::too_many_arguments)]
fn drive(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: impl IntoIterator<Item = SfcRequest>,
    cfg: StreamConfig,
    seed: u64,
    args: &HarnessArgs,
    rec: &mut Recorder,
    stats: &mut StreamStats,
    art: &mut RunArtifacts,
) -> (Vec<f64>, StreamObservation) {
    let (hash, set_hash) = (&mut art.hash, &mut art.set_hash);
    let mut on_record = |r: RequestRecord| {
        *hash = fold_record_hash(*hash, &r);
        *set_hash = fold_admitted_set_hash(*set_hash, &r);
        stats.record(&r);
    };
    if args.commit_order == CommitOrder::Relaxed {
        let pcfg = ParallelConfig {
            stream: cfg,
            workers: args.workers,
            seed,
            commit_order: CommitOrder::Relaxed,
            shards: args.shards,
            ..Default::default()
        };
        let (residual, ob, report) = process_stream_relaxed_reported(
            network,
            catalog,
            requests,
            &pcfg,
            true,
            rec,
            &mut on_record,
        );
        art.relaxed = Some(report);
        (residual, ob)
    } else if args.workers == 1 {
        process_stream_seeded_sink(network, catalog, requests, &cfg, seed, rec, &mut on_record)
    } else {
        let pcfg =
            ParallelConfig { stream: cfg, workers: args.workers, seed, ..Default::default() };
        process_stream_metered_sink(
            network,
            catalog,
            requests,
            &pcfg,
            args.batch,
            rec,
            &mut on_record,
        )
    }
}

/// Cache-plane attribution of each algorithm's observed stream: what the
/// plan cache did with every consulted request. `None` when no observed run
/// had the cache armed.
fn plan_cache_table(observations: &[(&str, StreamObservation)]) -> Option<Table> {
    let rows: Vec<(&str, obs::PlanCacheReport)> =
        observations.iter().filter_map(|(name, ob)| ob.plan_cache.map(|r| (*name, r))).collect();
    if rows.is_empty() {
        return None;
    }
    let mut table = Table::new(vec![
        "algorithm",
        "capacity",
        "hits",
        "epoch skips",
        "gate rejects",
        "misses",
        "stale",
        "insertions",
        "evictions",
        "hit rate",
        "plan hit rate",
    ]);
    for (name, r) in &rows {
        table.add_row(vec![
            name.to_string(),
            format!("{}", r.capacity),
            format!("{}", r.hits),
            format!("{}", r.epoch_skips),
            format!("{}", r.reject_hits),
            format!("{}", r.misses),
            format!("{}", r.validation_failures),
            format!("{}", r.insertions),
            format!("{}", r.evictions),
            format!("{:.3}", r.hit_rate()),
            format!("{:.3}", r.plan_hit_rate()),
        ]);
    }
    Some(table)
}

/// Per-capacity-shard contention attribution of each algorithm's relaxed
/// run: where commits landed (local = lock-free path) and what each shard's
/// conflicts, retries and rejects were.
fn shard_contention_table(reports: &[(&str, RelaxedReport)]) -> Table {
    let mut table = Table::new(vec![
        "algorithm",
        "shard",
        "cloudlets",
        "local commits",
        "straddle",
        "conflicts",
        "retries",
        "no-placement",
        "contended",
        "clamped",
    ]);
    for (name, rep) in reports {
        for row in &rep.contention.shards {
            table.add_row(vec![
                name.to_string(),
                format!("{}", row.shard),
                format!("{}", row.cloudlets),
                format!("{}", row.local_commits),
                format!("{}", row.straddle_commits),
                format!("{}", row.reserve_conflicts),
                format!("{}", row.retry_solves),
                format!("{}", row.rejects_no_placement),
                format!("{}", row.rejects_contention),
                format!("{}", row.overcommit_clamped),
            ]);
        }
    }
    table
}

/// The four paper algorithms, filtered for scenario scale: the per-request
/// ILP (and its randomized-rounding variant) is only worth running on
/// bounded streams, so above `ILP_REQUEST_CAP` requests the heavy pair is
/// dropped — loudly, never silently.
const ILP_REQUEST_CAP: usize = 50_000;

fn algorithm_set(
    scenario: bool,
    requests: usize,
    match_engine: relaug::heuristic::MatchEngine,
) -> Vec<(&'static str, Algorithm)> {
    let mut set: Vec<(&str, Algorithm)> = Vec::new();
    if !scenario || requests <= ILP_REQUEST_CAP {
        set.push(("ILP", Algorithm::Ilp(Default::default())));
        set.push(("Randomized", Algorithm::Randomized(Default::default())));
    } else {
        println!(
            "note: ILP and Randomized skipped at {requests} requests \
             (> {ILP_REQUEST_CAP}); pass --requests {ILP_REQUEST_CAP} or less to include them\n"
        );
    }
    set.push((
        "Heuristic",
        Algorithm::Heuristic(relaug::heuristic::HeuristicConfig {
            engine: match_engine,
            ..Default::default()
        }),
    ));
    set.push(("Greedy", Algorithm::Greedy(Default::default())));
    set
}

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stream_exp: {e}");
            std::process::exit(2);
        }
    };
    // Scenario mode: build the zoo topology once, stream lazily from the
    // spec-derived generator. The stream is a pure function of the spec, so
    // one stream per algorithm is the whole experiment — `--trials` is a
    // toy-fixture knob.
    let scenario = args.scenario.as_deref().map(|s| {
        let spec = ScenarioSpec::load(s).unwrap_or_else(|e| {
            eprintln!("stream_exp: {e}");
            std::process::exit(2);
        });
        spec.build()
    });
    let trials = if scenario.is_some() { 1 } else { args.trials.min(200) };
    let requests_per_stream =
        args.requests.unwrap_or(if scenario.is_some() { 100_000 } else { 100 });
    match &scenario {
        Some(built) => {
            println!(
                "## Stream experiment — scenario `{}`: {} nodes / {} cloudlets, \
                 {requests_per_stream} requests per stream\n",
                built.spec.name,
                built.network.num_nodes(),
                built.cloudlets(),
            );
            if args.trials > 1 {
                println!(
                    "note: --trials ignored with --scenario (the stream is a pure \
                     function of the spec seed)\n"
                );
            }
        }
        None => println!(
            "## Stream experiment — {requests_per_stream} requests per stream, {trials} streams\n"
        ),
    }
    // Record which engine path the run used. Stdout only — the JSONL trace
    // stays byte-identical across engine configurations (deterministic
    // orders; relaxed has no byte-identity to preserve).
    if args.commit_order == CommitOrder::Relaxed {
        let shards = if args.shards == 0 { "auto".to_string() } else { format!("{}", args.shards) };
        println!("engine: relaxed(shards={shards}), workers={}\n", args.workers);
        if args.metrics_interval.is_some() || args.flight.is_some() {
            println!(
                "note: --metrics-interval and --flight are ignored with \
                 --commit-order relaxed (no sequential order to window or replay)\n"
            );
        }
    } else if args.workers == 1 {
        println!("engine: sequential\n");
    } else if args.batch == 0 {
        println!("engine: batched(batch=auto), workers={}\n", args.workers);
    } else {
        println!("engine: batched(batch={}), workers={}\n", args.batch, args.workers);
    }
    if args.plan_cache > 0 {
        println!(
            "plan cache: {} entries (hits re-validated against live residuals; \
             record hashes are not comparable to uncached runs)\n",
            args.plan_cache
        );
    }
    match args.match_engine {
        relaug::heuristic::MatchEngine::Incremental => {}
        relaug::heuristic::MatchEngine::IncrementalWarm => println!(
            "match engine: warm (cross-round price carry; cost parity only — \
             record hashes are not comparable to the deterministic engines)\n"
        ),
        relaug::heuristic::MatchEngine::Rebuild => {
            println!("match engine: rebuild (historical per-round full rebuild)\n")
        }
    }

    // Telemetry sink: the first stream of each algorithm runs traced — into
    // the JSONL file when `--trace` is given, into memory otherwise — so the
    // end-of-run summary table always has data. Remaining trials run with the
    // no-op recorder (zero overhead).
    let mut rec = match &args.trace {
        Some(path) => Recorder::jsonl_file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("stream_exp: cannot open trace file {path}: {e}");
            std::process::exit(2);
        }),
        None => Recorder::memory(),
    };

    // Fault injection for the flight-recorder smoke: panic (after dumping
    // the flight ring) at this request index of the first observed stream.
    let inject_at: Option<usize> = std::env::var("RELAUG_INJECT_COMMIT_HARD_ERROR").ok().map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("stream_exp: RELAUG_INJECT_COMMIT_HARD_ERROR must be a request index");
            std::process::exit(2);
        })
    });

    // Per-shard metrics of each algorithm's first (observed) stream.
    let mut observations: Vec<(&str, StreamObservation)> = Vec::new();
    // Relaxed runs: each algorithm's report (contention + linearization).
    let mut relaxed_reports: Vec<(&str, RelaxedReport)> = Vec::new();
    let relaxed = args.commit_order == CommitOrder::Relaxed;

    let algorithms = algorithm_set(scenario.is_some(), requests_per_stream, args.match_engine);
    let mut columns =
        vec!["algorithm", "admitted", "mean rel.", "SLO met", "early rel.", "late rel.", "req/s"];
    if scenario.is_some() {
        columns.push("elapsed");
        // Completion-order records have no defined order-sensitive hash;
        // relaxed runs are compared by the admitted-set hash instead.
        columns.push(if relaxed { "set hash" } else { "record hash" });
    }
    let mut table = Table::new(columns);
    let mut effort = Table::new(vec![
        "algorithm",
        "events",
        "admitted",
        "rejected",
        "solve time",
        "p50",
        "p95",
        "p99",
    ]);
    // Matching-plane counters (first stream per algorithm; only the
    // heuristic's matching rounds populate them).
    let mut matchplane = Table::new(vec![
        "algorithm",
        "engine rounds",
        "fallback",
        "rebuild",
        "warm",
        "edges full",
        "edges live",
        "pruned",
        "passes",
    ]);
    let mut matchplane_lines: Vec<String> = Vec::new();
    for (name, algorithm) in algorithms {
        let mut admitted = Accumulator::new();
        let mut rel = Accumulator::new();
        let mut slo = Accumulator::new();
        let mut early = Accumulator::new();
        let mut late = Accumulator::new();
        let mut rate = Accumulator::new();
        let mut elapsed_s = 0.0;
        let mut art = RunArtifacts::new();
        let effort_base = rec.summary();
        let samples_base = rec.time_samples("stream.solve").len();
        for t in 0..trials {
            let cfg = StreamConfig {
                algorithm: algorithm.clone(),
                plan_cache: args.plan_cache,
                ..Default::default()
            };
            let mut stats = StreamStats::new();
            // The first stream of each algorithm runs with the full
            // observability config (windowing, flight ring, fault injection)
            // and yields the sharded-metrics observation for the contention
            // table; later trials use the no-op recorder. Requests are fed
            // lazily in both modes — the engine pulls them as its dispatch
            // window frees up, so the stream is never materialized.
            let start = Instant::now();
            let (_, ob) = match &scenario {
                Some(built) => {
                    let stream = RequestStream::new(built, requests_per_stream as u64);
                    drive(
                        &built.network,
                        &built.catalog,
                        stream,
                        observed_config(cfg, &args, inject_at),
                        built.spec.seed,
                        &args,
                        &mut rec,
                        &mut stats,
                        &mut art,
                    )
                }
                None => {
                    let seed = expkit::fan_out(args.seed, t as u64);
                    let mut rng = StdRng::seed_from_u64(seed);
                    let wl = WorkloadConfig::default();
                    let network = generate_network(&wl, &mut rng);
                    let catalog = generate_catalog(&wl, &mut rng);
                    let catalog_ref = &catalog;
                    let nodes = wl.nodes;
                    let requests = (0..requests_per_stream).map(move |i| {
                        SfcRequest::random(i, catalog_ref, (3, 6), 0.99, nodes, &mut rng)
                    });
                    let cfg = if t == 0 { observed_config(cfg, &args, inject_at) } else { cfg };
                    let mut noop = Recorder::noop();
                    let rec = if t == 0 { &mut rec } else { &mut noop };
                    drive(&network, &catalog, requests, cfg, seed, &args, rec, &mut stats, &mut art)
                }
            };
            let dt = start.elapsed().as_secs_f64();
            elapsed_s += dt;
            if dt > 0.0 {
                rate.push(stats.total as f64 / dt);
            }
            if t == 0 {
                observations.push((name, ob));
            }
            admitted.push(stats.admitted as f64);
            if let Some(m) = stats.mean_reliability() {
                rel.push(m);
            }
            if let Some(e) = stats.expectation_rate() {
                slo.push(e);
            }
            if let Some((e, l)) = stats.early_late_thirds() {
                early.push(e);
                late.push(l);
            }
        }
        let mut row = vec![
            name.to_string(),
            format!("{:.1}/{}", admitted.summary().mean, requests_per_stream),
            format!("{:.4}", rel.summary().mean),
            format!("{:.0}%", 100.0 * slo.summary().mean),
            format!("{:.4}", early.summary().mean),
            format!("{:.4}", late.summary().mean),
            format!("{:.0}", rate.summary().mean),
        ];
        if scenario.is_some() {
            row.push(expkit::table::fmt_duration_s(elapsed_s));
            row.push(if relaxed {
                format!("{:016x}", art.set_hash)
            } else {
                format!("{:016x}", art.hash)
            });
        }
        table.add_row(row);
        // Relaxed runs are linearization-verified on every trial; the report
        // kept here is the last trial's. A failed replay is a correctness
        // bug — fail the whole run loudly (CI greps for "linearization: OK").
        if let Some(report) = art.relaxed.take() {
            let lin = report.linearization.clone().expect("relaxed drive always verifies");
            if lin.replay_ok {
                println!(
                    "{name} linearization: OK (entries={}, max_dev={:.3e}); \
                     admitted set hash {:016x}; local commit fraction {:.3} \
                     (static ceiling {:.3}, {} shards)",
                    lin.entries,
                    lin.max_deviation,
                    art.set_hash,
                    report.contention.local_commit_fraction(),
                    report.static_local_fraction,
                    report.num_shards,
                );
            } else {
                eprintln!(
                    "{name} linearization: FAILED (entries={}, max_dev={:.3e})",
                    lin.entries, lin.max_deviation,
                );
                std::process::exit(1);
            }
            relaxed_reports.push((name, report));
        }
        // Delta of the cumulative telemetry = this algorithm's traced stream.
        let now = rec.summary();
        let solve_samples = &rec.time_samples("stream.solve")[samples_base..];
        let pct = |p: f64| {
            if solve_samples.is_empty() {
                "-".to_string()
            } else {
                expkit::table::fmt_duration_s(expkit::percentile(solve_samples, p))
            }
        };
        effort.add_row(vec![
            name.to_string(),
            format!("{}", now.events_emitted - effort_base.events_emitted),
            format!("{}", now.counter("stream.admitted") - effort_base.counter("stream.admitted")),
            format!("{}", now.counter("stream.rejected") - effort_base.counter("stream.rejected")),
            expkit::table::fmt_duration_s(
                now.timing_s("stream.solve") - effort_base.timing_s("stream.solve"),
            ),
            pct(50.0),
            pct(95.0),
            pct(99.0),
        ]);
        let delta = |key: &str| now.counter(key) - effort_base.counter(key);
        let (m_engine, m_fallback, m_rebuild, m_warm) = (
            delta("matching.rounds.engine"),
            delta("matching.rounds.fallback"),
            delta("matching.rounds.rebuild"),
            delta("matching.warm_rounds"),
        );
        if m_engine + m_fallback + m_rebuild > 0 {
            let (full, live) = (delta("matching.edges.full"), delta("matching.edges.materialized"));
            let pruned = if full > 0 { 100.0 * (1.0 - live as f64 / full as f64) } else { 0.0 };
            matchplane.add_row(vec![
                name.to_string(),
                format!("{m_engine}"),
                format!("{m_fallback}"),
                format!("{m_rebuild}"),
                format!("{m_warm}"),
                format!("{full}"),
                format!("{live}"),
                format!("{pruned:.1}%"),
                format!("{}", delta("matching.passes")),
            ]);
            // One parseable line per algorithm — the prune-fallback rate is
            // part of the run's contract, never silent.
            matchplane_lines.push(format!(
                "{name} matching plane: engine {m_engine} / fallback {m_fallback} / \
                 rebuild {m_rebuild} rounds, warm {m_warm}, edges {full} -> {live} \
                 ({pruned:.1}% pruned)",
            ));
        }
    }
    println!("{}", table.to_markdown());
    println!("\n### telemetry (first stream per algorithm)\n");
    println!("{}", effort.to_markdown());
    if !matchplane_lines.is_empty() {
        println!("\n### matching plane (first stream per algorithm)\n");
        println!("{}", matchplane.to_markdown());
        println!();
        for line in &matchplane_lines {
            println!("{line}");
        }
    }
    println!("\n### contention attribution (first stream per algorithm)\n");
    println!("{}", contention_table(&observations).to_markdown());
    if let Some(cache_table) = plan_cache_table(&observations) {
        println!("\n### plan cache (first stream per algorithm)\n");
        println!("{}", cache_table.to_markdown());
        println!();
        // One parseable line per algorithm — what CI's cache-smoke greps.
        for (name, ob) in &observations {
            if let Some(r) = ob.plan_cache {
                println!(
                    "{name} plan cache: hit-rate {:.3} (plan hit-rate {:.3}, \
                     hits {} / gate {} / misses {})",
                    r.hit_rate(),
                    r.plan_hit_rate(),
                    r.hits,
                    r.reject_hits,
                    r.misses,
                );
            }
        }
    }
    if !relaxed_reports.is_empty() {
        println!("\n### shard contention (relaxed commit order, last stream per algorithm)\n");
        println!("{}", shard_contention_table(&relaxed_reports).to_markdown());
    }
    if args.metrics_interval.is_some() {
        let windows: u64 = observations.iter().map(|(_, ob)| ob.windows).sum();
        println!("\nwindowed telemetry: {windows} stream.window summaries across observed streams");
    }
    println!("\npeak RSS: {}", expkit::peak_rss_human());
    rec.flush().expect("flush trace");
    if let Some(path) = &args.trace {
        println!("\nwrote {} telemetry events to {path}", rec.events_emitted());
    }
    println!(
        "\nEarly vs late: the reliability requests get degrades over the\n\
         stream as earlier arrivals consume the backup capacity around\n\
         their primaries — the system-level effect the paper's\n\
         single-request experiments hold fixed."
    );
}

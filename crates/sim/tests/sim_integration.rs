//! Integration tests for the discrete-event simulator: convergence of the
//! empirical availability to the paper's analytic `u_j`, strict improvement
//! from active repair policies, and byte-level run determinism.

use std::io::Write;
use std::sync::{Arc, Mutex};

use mecnet::network::MecNetwork;
use mecnet::topology;
use mecnet::vnf::{VnfCatalog, VnfType};
use obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{run, run_traced, NoRepair, PeriodicAudit, Reactive, SimConfig};

fn setup(seed: u64, cap_range: (f64, f64)) -> (MecNetwork, VnfCatalog) {
    let g = topology::grid(4, 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let net = MecNetwork::with_random_cloudlets(g, 6, cap_range, &mut rng);
    let mut cat = VnfCatalog::new();
    cat.add(VnfType { name: "fw".into(), demand_mhz: 200.0, reliability: 0.82 });
    cat.add(VnfType { name: "nat".into(), demand_mhz: 250.0, reliability: 0.78 });
    cat.add(VnfType { name: "ids".into(), demand_mhz: 150.0, reliability: 0.85 });
    (net, cat)
}

/// With no repair policy and no permanent failures, every instance's
/// long-run availability is exactly `r_i` by construction, so the
/// time-weighted availability of a long run must converge to the analytic
/// `u_j = Π_i (1 − (1 − r_i)^{n_i})` computed at admission. This is the
/// simulator's ground-truth check against the paper's closed form.
#[test]
fn norepair_availability_converges_to_analytic_u() {
    // Generous capacity so admissions don't distort the population; long
    // holding times so each request observes many failure/repair cycles.
    let (net, cat) = setup(11, (20_000.0, 30_000.0));
    let cfg = SimConfig {
        duration: 2_000.0,
        arrival_rate: 0.05,
        mean_holding: 400.0,
        mttr: 0.5,
        sfc_len_range: (2, 3),
        expectation: 0.95,
        seed: 2024,
        ..Default::default()
    };
    let rep = run(&net, &cat, &cfg, &NoRepair);
    assert!(rep.admitted >= 40, "need a real population, got {}", rep.admitted);
    assert!(rep.failures > 1_000, "need many cycles, got {}", rep.failures);
    let gap = (rep.mean_availability - rep.mean_analytic).abs();
    assert!(
        gap < 0.02,
        "empirical availability {} vs analytic u_j {} (gap {gap})",
        rep.mean_availability,
        rep.mean_analytic
    );
    // The aggregate alone could hide anti-correlated errors; the mean
    // per-request absolute gap must be small too.
    assert!(rep.mean_abs_gap < 0.05, "per-request gap too large: {}", rep.mean_abs_gap);
}

/// Reactive and periodic-audit repairs place extra secondaries whenever a
/// request degrades below its expectation, so on the *same* arrival stream
/// (policies share the workload RNG stream) both must strictly beat the
/// static NoRepair baseline.
#[test]
fn repair_policies_strictly_improve_availability() {
    let (net, cat) = setup(13, (20_000.0, 30_000.0));
    let cfg = SimConfig {
        duration: 600.0,
        arrival_rate: 0.08,
        mean_holding: 150.0,
        mttr: 2.0,
        sfc_len_range: (2, 3),
        expectation: 0.99,
        seed: 7,
        ..Default::default()
    };
    let base = run(&net, &cat, &cfg, &NoRepair);
    let reactive = run(&net, &cat, &cfg, &Reactive);
    let audited = run(&net, &cat, &cfg, &PeriodicAudit::new(5.0));
    // Paired comparison: identical arrival streams.
    assert_eq!(base.arrivals, reactive.arrivals);
    assert_eq!(base.arrivals, audited.arrivals);
    assert_eq!(base.reaugmentations, 0);
    assert!(reactive.reaugmentations > 0, "reactive policy must fire");
    assert!(audited.reaugmentations > 0, "audit policy must fire");
    assert!(
        reactive.mean_availability > base.mean_availability,
        "reactive {} must beat norepair {}",
        reactive.mean_availability,
        base.mean_availability
    );
    assert!(
        audited.mean_availability > base.mean_availability,
        "audit {} must beat norepair {}",
        audited.mean_availability,
        base.mean_availability
    );
    // Extra redundancy should also shorten total outage exposure.
    assert!(reactive.total_outage_time < base.total_outage_time);
}

/// A `Write` sink backed by a shared buffer, so a test can read back what a
/// JSONL recorder wrote after dropping it (flushes its `BufWriter`).
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_run_bytes(cfg: &SimConfig, seed: u64) -> (Vec<u8>, String) {
    let (net, cat) = setup(seed, (15_000.0, 25_000.0));
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let mut rec = Recorder::jsonl_writer(Box::new(buf.clone()));
    let report = run_traced(&net, &cat, cfg, &PeriodicAudit::new(10.0), &mut rec);
    drop(rec);
    let bytes = buf.0.lock().unwrap().clone();
    (bytes, report.to_json())
}

/// Two runs with the same seed and config must produce byte-identical JSONL
/// event logs and identical SLO report JSON — every `sim.*` event field is
/// simulation-time based, never wall clock.
#[test]
fn same_seed_runs_are_byte_identical() {
    let cfg = SimConfig {
        duration: 300.0,
        arrival_rate: 0.1,
        mean_holding: 80.0,
        mttr: 1.5,
        sfc_len_range: (2, 3),
        seed: 99,
        ..Default::default()
    };
    let (log_a, json_a) = traced_run_bytes(&cfg, 17);
    let (log_b, json_b) = traced_run_bytes(&cfg, 17);
    assert!(!log_a.is_empty(), "traced run must emit events");
    assert_eq!(log_a, log_b, "JSONL event logs differ between same-seed runs");
    assert_eq!(json_a, json_b, "SLO reports differ between same-seed runs");
    // And a different seed must actually change the run.
    let mut other = cfg.clone();
    other.seed = 100;
    let (log_c, _) = traced_run_bytes(&other, 17);
    assert_ne!(log_a, log_c, "different seeds should produce different logs");
}

//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (a tree-model API: `to_value` / `from_value`). The parser walks the
//! raw token stream directly — no `syn`/`quote` in the offline environment —
//! and supports the shapes this workspace uses:
//!
//! * structs with named fields (any field types that themselves implement the
//!   traits; types are never parsed, inference binds them),
//! * enums with unit variants, 1-tuple variants, and named-field variants.
//!
//! `#[serde(...)]` attributes are not interpreted; none are used in-tree.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Obj(__obj)"
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants.iter().map(|v| serialize_arm(&item.name, v)).collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::obj_field(__obj, \"{f}\", \"{n}\")?)?,\n",
                        n = item.name
                    )
                })
                .collect();
            format!(
                "let __obj = ::serde::as_obj(__v, \"{n}\")?;\nOk({n} {{\n{inits}}})",
                n = item.name
            )
        }
        Shape::Enum(variants) => deserialize_enum_body(&item.name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {} {{\n fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n",
        item.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn serialize_arm(enum_name: &str, v: &Variant) -> String {
    match &v.payload {
        Payload::Unit => format!(
            "{e}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n",
            e = enum_name,
            v = v.name
        ),
        Payload::Tuple(arity) => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let payload = if *arity == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let elems: String =
                    binds.iter().map(|b| format!("::serde::Serialize::to_value({b}),")).collect();
                format!("::serde::Value::Arr(vec![{elems}])")
            };
            format!(
                "{e}::{v}({binds}) => ::serde::Value::Obj(vec![(\"{v}\".to_string(), {payload})]),\n",
                e = enum_name,
                v = v.name,
                binds = binds.join(", ")
            )
        }
        Payload::Struct(fields) => {
            let binds = fields.join(", ");
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"))
                .collect();
            format!(
                "{e}::{v} {{ {binds} }} => ::serde::Value::Obj(vec![(\"{v}\".to_string(), ::serde::Value::Obj(vec![{pushes}]))]),\n",
                e = enum_name,
                v = v.name
            )
        }
    }
}

fn deserialize_enum_body(enum_name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.payload, Payload::Unit))
        .map(|v| format!("\"{v}\" => return Ok({e}::{v}),\n", v = v.name, e = enum_name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| match &v.payload {
            Payload::Unit => None,
            Payload::Tuple(1) => Some(format!(
                "\"{v}\" => return Ok({e}::{v}(::serde::Deserialize::from_value(__payload)?)),\n",
                v = v.name,
                e = enum_name
            )),
            Payload::Tuple(arity) => {
                let elems: String = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(::serde::arr_elem(__payload, {i}, \"{e}::{v}\")?)?,",
                            e = enum_name,
                            v = v.name
                        )
                    })
                    .collect();
                Some(format!(
                    "\"{v}\" => return Ok({e}::{v}({elems})),\n",
                    v = v.name,
                    e = enum_name
                ))
            }
            Payload::Struct(fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::obj_field(__fields, \"{f}\", \"{e}::{v}\")?)?,",
                            e = enum_name,
                            v = v.name
                        )
                    })
                    .collect();
                Some(format!(
                    "\"{v}\" => {{ let __fields = ::serde::as_obj(__payload, \"{e}::{v}\")?; return Ok({e}::{v} {{ {inits} }}); }}\n",
                    v = v.name,
                    e = enum_name
                ))
            }
        })
        .collect();
    format!(
        "match __v {{\n\
           ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
             _ => {{}}\n}},\n\
           ::serde::Value::Obj(__entries) if __entries.len() == 1 => {{\n\
             let (__tag, __payload) = &__entries[0];\n\
             match __tag.as_str() {{\n{tagged_arms}\
               _ => {{}}\n}}\n}},\n\
           _ => {{}}\n}}\n\
         Err(::serde::Error::custom(format!(\"no variant of {enum_name} matches {{:?}}\", __v)))"
    )
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Payload {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + bracket group
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    // Generic parameters are unsupported (none used in-tree).
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stub does not support generic types ({name})");
    }
    let body = loop {
        match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1, // skip `where` clauses etc.
            None => panic!("missing body for {name}"),
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Split a brace-group body on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments do not split fields.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth: i32 = 0;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(tt);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

/// Extract field names from a named-field body: for each top-level-comma part,
/// the identifier immediately before the first top-level `:`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|part| {
            let mut prev_ident: Option<String> = None;
            for tt in &part {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == ':' => {
                        return prev_ident.expect("field name before `:`");
                    }
                    TokenTree::Ident(id) => prev_ident = Some(id.to_string()),
                    _ => {}
                }
            }
            panic!("tuple structs are not supported by the derive stub")
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|part| {
            let mut name: Option<String> = None;
            let mut payload = Payload::Unit;
            let mut i = 0;
            while i < part.len() {
                match &part[i] {
                    TokenTree::Punct(p) if p.as_char() == '#' => i += 1, // attr `#`
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {} // attr body
                    TokenTree::Ident(id) => name = Some(id.to_string()),
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        payload = Payload::Tuple(split_top_level(g.stream()).len());
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        payload = Payload::Struct(parse_named_fields(g.stream()));
                    }
                    _ => {}
                }
                i += 1;
            }
            Variant { name: name.expect("variant name"), payload }
        })
        .collect()
}

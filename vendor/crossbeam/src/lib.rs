//! Offline stand-in for `crossbeam`. Only the `channel` module is provided,
//! as a thin facade over `std::sync::mpsc` — sufficient for the fan-out /
//! collect pattern the bench harness uses (clone senders into scoped threads,
//! drain the receiver by iteration).

pub mod channel {
    use std::sync::mpsc;

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self.0.iter())
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter(self.0.into_iter())
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    pub struct Iter<'a, T>(mpsc::Iter<'a, T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.next()
        }
    }

    pub struct IntoIter<T>(mpsc::IntoIter<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.next()
        }
    }

    pub struct SendError<T>(pub T);

    // Like the real crate (and std's mpsc), Debug does not require T: Debug.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_preserves_all_messages() {
            let (tx, rx) = unbounded::<(usize, usize)>();
            std::thread::scope(|scope| {
                for w in 0..4 {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in (w..20).step_by(4) {
                            tx.send((i, i * i)).unwrap();
                        }
                    });
                }
                drop(tx);
                let mut got = vec![None; 20];
                for (i, sq) in rx {
                    got[i] = Some(sq);
                }
                for (i, sq) in got.iter().enumerate() {
                    assert_eq!(*sq, Some(i * i));
                }
            });
        }
    }
}

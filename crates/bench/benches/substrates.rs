//! Criterion microbenchmarks of the substrates: the simplex LP solver,
//! branch and bound, min-cost max matching, the Hungarian assignment solver,
//! and topology generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matching::{hungarian, min_cost_max_matching};
use mecnet::topology::{waxman, WaxmanConfig};
use milp::{Model, Relation, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random dense LP: maximize c'x s.t. Ax <= b.
fn random_lp(vars: usize, rows: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> =
        (0..vars).map(|_| m.add_var(0.0, f64::INFINITY, rng.gen_range(0.1..5.0))).collect();
    for _ in 0..rows {
        let terms = xs.iter().map(|&v| (v, rng.gen_range(0.1..3.0))).collect();
        m.add_constraint(terms, Relation::Le, rng.gen_range(5.0..40.0));
    }
    m
}

/// A random knapsack-style MILP.
fn random_milp(vars: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> = (0..vars).map(|_| m.add_binary_var(rng.gen_range(1.0..10.0))).collect();
    for _ in 0..3 {
        let terms = xs.iter().map(|&v| (v, rng.gen_range(1.0..5.0))).collect();
        m.add_constraint(terms, Relation::Le, vars as f64);
    }
    m
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for &(vars, rows) in &[(50usize, 25usize), (150, 60), (400, 120)] {
        let lp = random_lp(vars, rows, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}x{rows}")),
            &lp,
            |b, lp| b.iter(|| milp::solve_lp(lp).unwrap().objective),
        );
    }
    group.finish();
}

fn bench_bnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_bound");
    for &vars in &[15usize, 25, 40] {
        let m = random_milp(vars, 7);
        group.bench_with_input(BenchmarkId::from_parameter(vars), &m, |b, m| {
            b.iter(|| milp::solve_milp(m).unwrap().objective)
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &(nl, nr) in &[(10usize, 50usize), (10, 200), (20, 500)] {
        let mut rng = StdRng::seed_from_u64(3);
        let mut edges = Vec::new();
        for l in 0..nl {
            for r in 0..nr {
                if rng.gen::<f64>() < 0.3 {
                    edges.push((l, r, rng.gen_range(0.1..5.0)));
                }
            }
        }
        group.bench_with_input(
            BenchmarkId::new("mcmf", format!("{nl}x{nr}")),
            &edges,
            |b, edges| b.iter(|| min_cost_max_matching(nl, nr, edges).cost),
        );
    }
    // Dense square Hungarian.
    for &n in &[20usize, 60] {
        let mut rng = StdRng::seed_from_u64(5);
        let cost: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect()).collect();
        group.bench_with_input(BenchmarkId::new("hungarian", n), &cost, |b, cost| {
            b.iter(|| hungarian::solve(cost).unwrap().cost)
        });
    }
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    for &n in &[100usize, 400] {
        group.bench_with_input(BenchmarkId::new("waxman", n), &n, |b, &n| {
            let cfg = WaxmanConfig { nodes: n, ..Default::default() };
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| waxman(&cfg, &mut rng).0.num_edges())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_simplex, bench_bnb, bench_matching, bench_topology
}
criterion_main!(benches);

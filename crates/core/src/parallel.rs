//! Parallel admission pipeline with a deterministic, sequenced commit.
//!
//! Requests fan out over a pool of worker threads that solve augmentation
//! *speculatively* against capacity snapshots; a coordinator commits results
//! strictly in arrival order through the network's two-phase reserve/commit
//! ledger ([`mecnet::MecNetwork::try_reserve`]). A speculation is valid iff
//! the authoritative admission replay lands on the same primary placement
//! *and* the rebuilt (localized) [`crate::AugmentationInstance`] compares
//! equal to the one the worker solved — instance equality plus the
//! per-request derived RNG guarantees the solver would reproduce the
//! speculated outcome bit for bit, so reusing it is sound. On a mismatch the
//! request is re-solved inline on the authoritative state, which is exactly
//! the sequential computation. Either way every commit equals what
//! [`crate::stream::process_stream_seeded`] produces, so the pipeline is
//! **byte-identical to the sequential one for the same seed and arrival
//! order**, for any worker count and any thread timing.
//!
//! Telemetry follows the same discipline: workers record solver events into
//! private memory recorders, and the coordinator absorbs them into the main
//! recorder at commit time — i.e. ordered by request sequence, not by
//! completion time ([`obs::Recorder::absorb`]).

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use mecnet::network::MecNetwork;
use mecnet::request::SfcRequest;
use mecnet::vnf::VnfCatalog;
use obs::{FlightRecorder, Recorder};

use crate::scratch::SolveScratch;
use crate::stream::{
    commit_request, pipeline_metrics, process_stream_seeded_sink, speculate_batch, PipelineState,
    RequestRecord, Speculation, StreamConfig, StreamObservation, StreamOutcome, TraceLevel,
};

/// How the parallel engine orders commits against the shared capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitOrder {
    /// Strict request-sequence commits through one coordinator —
    /// byte-identical to the sequential pipeline for any worker count (the
    /// default, and the only mode the equivalence tests cover).
    #[default]
    Deterministic,
    /// Any linearization: capacity moves into the sharded atomic owner
    /// ([`mecnet::shard::ShardedCapacity`]) and shard-local requests commit
    /// lock-free on their worker, so records arrive in completion order and
    /// admission is locality-first. Verified by invariant checking, not
    /// byte-identity — see [`crate::relaxed`].
    Relaxed,
}

/// Knobs for the parallel engine.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    pub stream: StreamConfig,
    /// Worker threads. `1` runs the sequential seeded pipeline inline.
    pub workers: usize,
    /// Base seed for the per-request derived RNGs.
    pub seed: u64,
    /// Cap on dispatched-but-uncommitted requests (`0` = `2 * workers`
    /// deterministic, `64 * workers` relaxed). Small windows keep
    /// deterministic snapshots fresh (fewer conflicts); large windows keep
    /// workers busier.
    pub max_inflight: usize,
    /// Commit ordering discipline (see [`CommitOrder`]).
    pub commit_order: CommitOrder,
    /// Capacity shards for the relaxed commit order (`0` = one per worker).
    /// Ignored in deterministic mode.
    pub shards: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            stream: StreamConfig::default(),
            workers: 1,
            seed: 0,
            max_inflight: 0,
            commit_order: CommitOrder::Deterministic,
            shards: 0,
        }
    }
}

/// Immutable state snapshot a speculation runs against.
struct Snapshot {
    residual: Vec<f64>,
    deployed: Option<HashMap<(usize, usize), usize>>,
}

/// Process a request stream with `cfg.workers` speculative workers.
///
/// Byte-identical to [`crate::stream::process_stream_seeded`] with the same
/// `(cfg.stream, cfg.seed)` — see the module docs for why. Delegates to
/// [`process_stream_batched`] with automatic batch sizing.
pub fn process_stream_parallel(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: &[SfcRequest],
    cfg: &ParallelConfig,
) -> StreamOutcome {
    process_stream_parallel_traced(network, catalog, requests, cfg, &mut Recorder::noop())
}

/// [`process_stream_parallel`] with telemetry. After the deterministic merge
/// the recorder's event stream is identical to the sequential pipeline's;
/// `stream.conflicts` counts speculations the commit step had to redo (a
/// counter, not an event, so it never perturbs the JSONL stream).
pub fn process_stream_parallel_traced(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: &[SfcRequest],
    cfg: &ParallelConfig,
    rec: &mut Recorder,
) -> StreamOutcome {
    process_stream_batched_traced(network, catalog, requests, cfg, 0, rec)
}

/// [`process_stream_parallel`] with an explicit dispatch batch size: workers
/// receive contiguous runs of `batch` requests per job instead of one, which
/// amortizes snapshotting and channel traffic when per-request solves are
/// cheap. `batch == 0` sizes batches automatically (the in-flight window
/// split evenly across workers, at least one). Any batch size produces
/// byte-identical output — batching only changes scheduling, never results.
pub fn process_stream_batched(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: &[SfcRequest],
    cfg: &ParallelConfig,
    batch: usize,
) -> StreamOutcome {
    process_stream_batched_traced(network, catalog, requests, cfg, batch, &mut Recorder::noop())
}

/// [`process_stream_batched`] with telemetry — the actual engine.
///
/// Within a batch, a worker locally *simulates* each request's commit
/// (admission debits, two-phase secondary debits, deployed updates) before
/// speculating the next, so consecutive requests in one batch see each
/// other's effects exactly as the sequential pipeline would. Commit-side
/// validation is per request and unchanged, so determinism never rests on
/// the simulation being right.
pub fn process_stream_batched_traced(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: &[SfcRequest],
    cfg: &ParallelConfig,
    batch: usize,
    rec: &mut Recorder,
) -> StreamOutcome {
    process_stream_metered(network, catalog, requests, cfg, batch, rec).0
}

/// Guard that dumps a worker's flight ring if its thread unwinds — the
/// "postmortem on panic" half of the flight recorder. Dropping normally
/// writes nothing.
struct WorkerFlight {
    ring: FlightRecorder,
    path: PathBuf,
}

impl Drop for WorkerFlight {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.ring.dump_to_path("worker_panic", &self.path);
        }
    }
}

/// [`process_stream_batched_traced`] returning the per-shard metrics
/// observation — coordinator commit-path latencies and waits in
/// `observation.pipeline`, each worker's solve/wait/conflict attribution in
/// `observation.per_worker` — alongside the outcome. This is the actual
/// engine.
///
/// Within a batch, a worker locally *simulates* each request's commit
/// (admission debits, two-phase secondary debits, deployed updates) before
/// speculating the next, so consecutive requests in one batch see each
/// other's effects exactly as the sequential pipeline would. Commit-side
/// validation is per request and unchanged, so determinism never rests on
/// the simulation being right.
pub fn process_stream_metered(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: &[SfcRequest],
    cfg: &ParallelConfig,
    batch: usize,
    rec: &mut Recorder,
) -> (StreamOutcome, StreamObservation) {
    let mut records = Vec::with_capacity(requests.len());
    let (final_residual, observation) = process_stream_metered_sink(
        network,
        catalog,
        requests.iter().cloned(),
        cfg,
        batch,
        rec,
        &mut |r| records.push(r),
    );
    (StreamOutcome { records, final_residual }, observation)
}

/// [`process_stream_metered`] over a *lazy* request source: the coordinator
/// pulls requests from the iterator only as dispatch-window room opens, ships
/// each batch to its worker by value, and keeps exactly the
/// dispatched-but-uncommitted requests (at most `max_inflight`) alive for the
/// in-order commit — so memory stays O(window) regardless of stream length.
/// Each committed [`RequestRecord`] goes to `on_record` instead of a result
/// vector. The slice entry points delegate here with an eager iterator;
/// output is byte-identical for any worker count, batch size, or source
/// laziness because dispatch order, batch boundaries and the per-request
/// derived RNGs never depend on how the requests were produced.
pub fn process_stream_metered_sink(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: impl IntoIterator<Item = SfcRequest>,
    cfg: &ParallelConfig,
    batch: usize,
    rec: &mut Recorder,
    on_record: &mut dyn FnMut(RequestRecord),
) -> (Vec<f64>, StreamObservation) {
    assert!(cfg.workers >= 1, "need at least one worker");
    if cfg.commit_order == CommitOrder::Relaxed {
        return crate::relaxed::process_stream_relaxed_sink(
            network, catalog, requests, cfg, rec, on_record,
        );
    }
    let mut requests = requests.into_iter();
    if cfg.workers == 1 {
        return process_stream_seeded_sink(
            network,
            catalog,
            requests,
            &cfg.stream,
            cfg.seed,
            rec,
            on_record,
        );
    }
    let max_inflight = if cfg.max_inflight == 0 { 2 * cfg.workers } else { cfg.max_inflight };
    let nbhd = network.neighborhood_index(cfg.stream.l);
    let mut state = PipelineState::new(network, &cfg.stream, cfg.workers + 1);
    let metrics = Arc::clone(&state.obs.metrics);
    let trace = if !rec.enabled() {
        TraceLevel::Off
    } else if state.obs.full {
        TraceLevel::Full
    } else {
        TraceLevel::Counters
    };
    let mut commit_scratch = SolveScratch::new();
    let (job_tx, job_rx) = channel::unbounded::<(usize, Vec<SfcRequest>, Arc<Snapshot>)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, Vec<Speculation>)>();
    std::thread::scope(|scope| {
        for w in 0..cfg.workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let stream_cfg = &cfg.stream;
            let seed = cfg.seed;
            let nbhd = Arc::clone(&nbhd);
            let metrics = Arc::clone(&metrics);
            scope.spawn(move || {
                use pipeline_metrics::{C_SOLVES, H_JOB_WAIT_NS, H_SOLVE_NS};
                let shard_idx = w + 1;
                let mut flight = stream_cfg.flight.as_ref().map(|spec| WorkerFlight {
                    ring: FlightRecorder::new(spec.capacity),
                    path: spec.dir.join(format!("flight-worker{w}.jsonl")),
                });
                let mut scratch = SolveScratch::new();
                loop {
                    let wait_started = Instant::now();
                    let Ok((start, batch_reqs, snapshot)) = job_rx.recv() else { break };
                    metrics.shard(shard_idx).record_duration(H_JOB_WAIT_NS, wait_started.elapsed());
                    let mut specs = speculate_batch(
                        network,
                        catalog,
                        stream_cfg,
                        seed,
                        start,
                        &batch_reqs,
                        &snapshot.residual,
                        snapshot.deployed.as_ref(),
                        trace,
                        &nbhd,
                        &mut scratch,
                    );
                    let done = Instant::now();
                    for (off, spec) in specs.iter_mut().enumerate() {
                        spec.worker = shard_idx;
                        spec.completed_at = Some(done);
                        if spec.outcome.is_some() {
                            metrics.shard(shard_idx).incr(C_SOLVES);
                            metrics
                                .shard(shard_idx)
                                .record_duration(H_SOLVE_NS, spec.solve_elapsed);
                        }
                        if let Some(fl) = flight.as_mut() {
                            fl.ring.push(
                                obs::Event::new("flight.speculate")
                                    .with("k", start + off)
                                    .with("worker", w)
                                    .with("placed", spec.placement.is_some())
                                    .with(
                                        "solve_us",
                                        spec.solve_elapsed.as_micros().min(u64::MAX as u128) as u64,
                                    ),
                            );
                        }
                    }
                    if res_tx.send((start, specs)).is_err() {
                        break; // coordinator gone
                    }
                }
            });
        }
        // The coordinator holds the only remaining result receiver and job
        // sender; dropping the worker-side clones here lets disconnection
        // propagate when the loop below finishes.
        drop(job_rx);
        drop(res_tx);
        let mut next_dispatch = 0usize;
        let mut exhausted = false;
        // Dispatched-but-uncommitted requests, retained for the in-order
        // commit replay; never holds more than `max_inflight` entries.
        let mut inflight: BTreeMap<usize, SfcRequest> = BTreeMap::new();
        // Completed speculations that arrived ahead of their commit turn.
        let mut pending: BTreeMap<usize, Speculation> = BTreeMap::new();
        let mut k = 0usize;
        loop {
            // Keep the window full, always snapshotting the freshest
            // committed state available at dispatch time.
            while !exhausted && next_dispatch - k < max_inflight {
                let room = max_inflight - (next_dispatch - k);
                let auto = (room / cfg.workers).max(1);
                let want = (if batch == 0 { auto } else { batch }).min(room);
                let mut batch_reqs = Vec::with_capacity(want);
                while batch_reqs.len() < want {
                    match requests.next() {
                        Some(req) => batch_reqs.push(req),
                        None => {
                            exhausted = true;
                            break;
                        }
                    }
                }
                if batch_reqs.is_empty() {
                    break;
                }
                for (off, req) in batch_reqs.iter().enumerate() {
                    inflight.insert(next_dispatch + off, req.clone());
                }
                let len = batch_reqs.len();
                let snapshot = Arc::new(Snapshot {
                    residual: state.residual.clone(),
                    deployed: state.deployed.clone(),
                });
                job_tx.send((next_dispatch, batch_reqs, snapshot)).expect("workers alive");
                next_dispatch += len;
            }
            if k == next_dispatch {
                break; // source drained and every dispatch committed
            }
            let spec = loop {
                if let Some(spec) = pending.remove(&k) {
                    break spec;
                }
                // Blocked on workers with a commit pending: the coordinator's
                // wait share, as opposed to its commit/validation work.
                let wait_started = Instant::now();
                let (start, specs) = res_rx.recv().expect("workers alive while jobs pending");
                metrics
                    .shard(0)
                    .record_duration(pipeline_metrics::H_COORD_WAIT_NS, wait_started.elapsed());
                for (off, spec) in specs.into_iter().enumerate() {
                    pending.insert(start + off, spec);
                }
            };
            let req = inflight.remove(&k).expect("dispatched request retained until commit");
            on_record(commit_request(
                network,
                catalog,
                &cfg.stream,
                cfg.seed,
                k,
                &req,
                &mut state,
                Some(spec),
                rec,
                &nbhd,
                &mut commit_scratch,
            ));
            k += 1;
        }
        drop(job_tx); // disconnect: workers drain and exit
    });
    state.obs.finish(rec);
    let observation = state.obs.observation();
    (state.residual, observation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{process_stream_seeded, process_stream_seeded_traced, Algorithm};
    use mecnet::topology;
    use mecnet::vnf::VnfType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (MecNetwork, VnfCatalog) {
        let g = topology::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let net = MecNetwork::with_random_cloudlets(g, 4, (2000.0, 3000.0), &mut rng);
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "a".into(), demand_mhz: 300.0, reliability: 0.85 });
        cat.add(VnfType { name: "b".into(), demand_mhz: 400.0, reliability: 0.9 });
        (net, cat)
    }

    fn make_requests(n: usize, cat: &VnfCatalog, nodes: usize, seed: u64) -> Vec<SfcRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|i| SfcRequest::random(i, cat, (2, 2), 0.99, nodes, &mut rng)).collect()
    }

    #[test]
    fn parallel_matches_sequential_for_default_algorithm() {
        let (net, cat) = setup();
        let reqs = make_requests(30, &cat, net.num_nodes(), 7);
        let seq = process_stream_seeded(&net, &cat, &reqs, &StreamConfig::default(), 11);
        for workers in [1, 2, 4] {
            let cfg = ParallelConfig { workers, seed: 11, ..Default::default() };
            let par = process_stream_parallel(&net, &cat, &reqs, &cfg);
            assert_eq!(par, seq, "workers={workers} must be byte-identical to sequential");
        }
    }

    #[test]
    fn parallel_matches_sequential_with_sharing_and_randomized() {
        let (net, cat) = setup();
        let reqs = make_requests(20, &cat, net.num_nodes(), 8);
        for algorithm in
            [Algorithm::Randomized(Default::default()), Algorithm::Greedy(Default::default())]
        {
            let stream = StreamConfig { share_backups: true, algorithm, ..Default::default() };
            let seq = process_stream_seeded(&net, &cat, &reqs, &stream, 5);
            let cfg = ParallelConfig { stream, workers: 3, seed: 5, ..Default::default() };
            let par = process_stream_parallel(&net, &cat, &reqs, &cfg);
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn merged_telemetry_matches_sequential_event_stream() {
        let (net, cat) = setup();
        let reqs = make_requests(25, &cat, net.num_nodes(), 9);
        let stream = StreamConfig::default();
        let mut seq_rec = Recorder::memory();
        let seq = process_stream_seeded_traced(&net, &cat, &reqs, &stream, 3, &mut seq_rec);
        let cfg = ParallelConfig { stream, workers: 4, seed: 3, ..Default::default() };
        let mut par_rec = Recorder::memory();
        let par = process_stream_parallel_traced(&net, &cat, &reqs, &cfg, &mut par_rec);
        assert_eq!(par, seq);
        assert_eq!(
            par_rec.events(),
            seq_rec.events(),
            "deterministic merge must reorder worker events into sequence order"
        );
        assert_eq!(par_rec.counter("stream.admitted"), seq_rec.counter("stream.admitted"));
        assert_eq!(par_rec.counter("stream.rejected"), seq_rec.counter("stream.rejected"));
    }

    #[test]
    fn metered_counters_match_sequential_shard_zero() {
        // The commit-path counters live on the coordinator shard and count
        // sequenced decisions, so they must be exactly reproducible across
        // worker counts; only timings and per-worker attribution may differ.
        let (net, cat) = setup();
        let reqs = make_requests(30, &cat, net.num_nodes(), 16);
        let stream = StreamConfig::default();
        let (seq, seq_ob) = crate::stream::process_stream_seeded_observed(
            &net,
            &cat,
            &reqs,
            &stream,
            21,
            &mut Recorder::noop(),
        );
        let cfg = ParallelConfig { stream, workers: 3, seed: 21, ..Default::default() };
        let (par, par_ob) =
            process_stream_metered(&net, &cat, &reqs, &cfg, 1, &mut Recorder::noop());
        assert_eq!(par, seq);
        for name in ["requests", "admitted", "rejected.no_primary_placement"] {
            assert_eq!(
                par_ob.pipeline.counter(name),
                seq_ob.pipeline.counter(name),
                "coordinator counter {name} must not depend on worker count"
            );
        }
        // Every solve the sequential pipeline ran shows up in the parallel
        // run as either an accepted speculation or an inline re-solve.
        assert_eq!(
            par_ob.pipeline.counter("speculation.hits") + par_ob.pipeline.counter("solves"),
            seq_ob.pipeline.counter("solves"),
            "speculation hits plus inline re-solves must cover every solve"
        );
        assert_eq!(par_ob.per_worker.len(), 3);
    }

    #[test]
    fn tight_capacity_forces_conflicts_but_not_divergence() {
        // A nearly-full network maximizes speculation conflicts (every commit
        // moves the residual the later speculations snapshotted); the merge
        // must still be exact.
        let (net, cat) = setup();
        let reqs = make_requests(40, &cat, net.num_nodes(), 10);
        let stream = StreamConfig { initial_capacity_fraction: 0.35, ..Default::default() };
        let seq = process_stream_seeded(&net, &cat, &reqs, &stream, 2);
        let cfg =
            ParallelConfig { stream, workers: 4, max_inflight: 8, seed: 2, ..Default::default() };
        let par = process_stream_parallel(&net, &cat, &reqs, &cfg);
        assert_eq!(par, seq);
        assert!(seq.rejected() > 0, "capacity pressure should reject something");
    }

    #[test]
    fn cached_parallel_matches_cached_sequential() {
        // The plan cache is consulted only by the coordinator, in sequence
        // order, so cached mode preserves the cross-worker equivalence —
        // against the *cached* sequential run (cached mode is not
        // byte-identical to uncached mode, and is not meant to be).
        let (net, cat) = setup();
        // A 2-type catalog and 16 sources give at most 64 distinct plan keys,
        // so 60 requests repeat keys often enough to exercise hits.
        let reqs = make_requests(60, &cat, net.num_nodes(), 13);
        let stream = StreamConfig { plan_cache: 64, ..Default::default() };
        let (seq, seq_ob) = crate::stream::process_stream_seeded_observed(
            &net,
            &cat,
            &reqs,
            &stream,
            23,
            &mut Recorder::noop(),
        );
        let cache = seq_ob.plan_cache.expect("cache report present when enabled");
        assert!(cache.hits + cache.reject_hits > 0, "fixture must exercise the cache: {cache:?}");
        for workers in [2, 4] {
            let cfg =
                ParallelConfig { stream: stream.clone(), workers, seed: 23, ..Default::default() };
            let (par, par_ob) =
                process_stream_metered(&net, &cat, &reqs, &cfg, 1, &mut Recorder::noop());
            assert_eq!(par, seq, "workers={workers} cached run must match cached sequential");
            let par_cache = par_ob.plan_cache.expect("cache report present");
            assert_eq!(par_cache.hits, cache.hits, "workers={workers}");
            assert_eq!(par_cache.reject_hits, cache.reject_hits, "workers={workers}");
            assert_eq!(par_cache.misses, cache.misses, "workers={workers}");
        }
    }

    #[test]
    fn single_worker_delegates_to_sequential() {
        let (net, cat) = setup();
        let reqs = make_requests(5, &cat, net.num_nodes(), 12);
        let cfg = ParallelConfig { workers: 1, seed: 4, ..Default::default() };
        let par = process_stream_parallel(&net, &cat, &reqs, &cfg);
        let seq = process_stream_seeded(&net, &cat, &reqs, &StreamConfig::default(), 4);
        assert_eq!(par, seq);
    }
}

//! Regenerates Fig. 2 of the paper: performance of ILP / Randomized /
//! Heuristic while the network-function reliability interval varies over
//! [0.55, 0.65), [0.65, 0.75), [0.75, 0.85), [0.85, 0.95]
//! (SFC length 3–10, residual capacity 25%, `l = 1`).
//!
//! Usage: `cargo run -p bench-harness --release --bin fig2 -- [--trials N]
//! [--seed S] [--threads T] [--json PATH] [--greedy] [--no-ilp]`

use bench_harness::{render_figure, run_point, sweeps, to_json, HarnessArgs};

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fig2: {e}");
            std::process::exit(2);
        }
    };
    println!("## Fig. 2 — varying the network function reliability from 0.6 to 0.9");
    println!("({} trials/point, seed {}, {} threads)\n", args.trials, args.seed, args.threads);
    let mut points = Vec::new();
    for interval in sweeps::fig2_intervals() {
        let cfg = args.apply(sweeps::fig2_point(interval, args.trials, args.seed));
        let started = std::time::Instant::now();
        let res = run_point(&cfg);
        eprintln!(
            "  point [{:.2}, {:.2}) done in {:.1} s",
            interval.0,
            interval.1,
            started.elapsed().as_secs_f64()
        );
        points.push(res);
    }
    println!("{}", render_figure(&points));
    if let Some(path) = &args.json {
        std::fs::write(path, to_json(&points)).expect("write JSON");
        eprintln!("wrote {path}");
    }
}

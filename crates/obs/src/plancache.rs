//! Serializable cache-plane summary for the admission plan cache
//! (`relaug::plancache`).
//!
//! The engines count cache traffic in the existing lock-free pipeline metrics
//! (`plancache.*` counters); this report is the aggregated, serializable view
//! that rides in `StreamObservation` and the `stream_exp` cache table. The
//! split mirrors [`crate::contention`]: hot-path increments stay relaxed
//! atomics, aggregation happens once per run.

use serde::{Deserialize, Serialize};

/// Aggregated plan-cache counters for one stream run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCacheReport {
    /// Configured cache capacity (slots).
    pub capacity: u64,
    /// Plan hits: a cached plan validated against live residuals and was
    /// applied (includes the epoch-skip subset below).
    pub hits: u64,
    /// Hits that took the epoch fast path — every stamped node epoch was
    /// unchanged, so even the feasibility re-walk was skipped.
    pub epoch_skips: u64,
    /// Requests short-circuited by the reject-gate watermark (their largest
    /// per-function demand exceeded the maximum cloudlet residual).
    pub reject_hits: u64,
    /// Probes that found no usable plan and fell through to a fresh solve.
    pub misses: u64,
    /// Subset of misses where a candidate existed but failed re-validation
    /// (capacity moved, or the recomputed reliability no longer clears the
    /// incoming threshold); the stale entry was dropped.
    pub validation_failures: u64,
    /// Entries written after fresh solves (initial population + repopulation
    /// after a validation failure).
    pub insertions: u64,
    /// Insertions that displaced a live entry with a different key.
    pub evictions: u64,
}

impl PlanCacheReport {
    /// Fraction of cache-consulted requests the cache short-circuited —
    /// plan hits plus watermark rejections over all consultations.
    pub fn hit_rate(&self) -> f64 {
        let consulted = self.hits + self.reject_hits + self.misses;
        if consulted == 0 {
            0.0
        } else {
            (self.hits + self.reject_hits) as f64 / consulted as f64
        }
    }

    /// Fraction of *plan* probes (gate excluded) that hit.
    pub fn plan_hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates_count_gate_and_plan_traffic() {
        let r = PlanCacheReport {
            capacity: 16,
            hits: 30,
            epoch_skips: 20,
            reject_hits: 50,
            misses: 20,
            validation_failures: 5,
            insertions: 20,
            evictions: 3,
        };
        assert!((r.hit_rate() - 0.8).abs() < 1e-12);
        assert!((r.plan_hit_rate() - 0.6).abs() < 1e-12);
        let empty = PlanCacheReport::default();
        assert_eq!(empty.hit_rate(), 0.0);
        assert_eq!(empty.plan_hit_rate(), 0.0);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let r = PlanCacheReport { capacity: 4096, hits: 7, misses: 2, ..Default::default() };
        let json = serde_json::to_string(&r).unwrap();
        let back: PlanCacheReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}

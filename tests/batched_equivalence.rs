//! Batched-dispatch equivalence: the batched speculative pipeline must be
//! indistinguishable from the seeded sequential pipeline for every batch
//! size and worker count — same per-request records, same final residual
//! capacities, and a byte-identical telemetry JSONL stream. Within a batch,
//! workers simulate their predecessors' commits locally; this test pins that
//! the simulation (and its conflict fallback) never changes results.

use std::io::Write;
use std::sync::{Arc, Mutex};

use mec_sfc_reliability::mecnet::topology;
use mec_sfc_reliability::mecnet::vnf::{VnfCatalog, VnfType};
use mec_sfc_reliability::mecnet::{MecNetwork, SfcRequest};
use mec_sfc_reliability::obs::Recorder;
use mec_sfc_reliability::relaug::parallel::{
    process_stream_batched, process_stream_batched_traced, ParallelConfig,
};
use mec_sfc_reliability::relaug::stream::{
    process_stream_seeded, process_stream_seeded_traced, Algorithm, StreamConfig, StreamOutcome,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `Write` sink whose bytes can be read back after the recorder is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn setup(net_seed: u64, cloudlets: usize) -> (MecNetwork, VnfCatalog) {
    let g = topology::grid(5, 5);
    let mut rng = StdRng::seed_from_u64(net_seed);
    let net = MecNetwork::with_random_cloudlets(g, cloudlets, (2000.0, 4000.0), &mut rng);
    let mut cat = VnfCatalog::new();
    cat.add(VnfType { name: "fw".into(), demand_mhz: 300.0, reliability: 0.85 });
    cat.add(VnfType { name: "nat".into(), demand_mhz: 400.0, reliability: 0.9 });
    cat.add(VnfType { name: "ids".into(), demand_mhz: 250.0, reliability: 0.8 });
    (net, cat)
}

fn make_requests(n: usize, cat: &VnfCatalog, nodes: usize, seed: u64) -> Vec<SfcRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|i| SfcRequest::random(i, cat, (2, 4), 0.99, nodes, &mut rng)).collect()
}

/// Run a pipeline variant with a JSONL recorder; return the outcome and the
/// exact bytes it streamed.
fn run_jsonl<F>(run: F) -> (StreamOutcome, Vec<u8>)
where
    F: FnOnce(&mut Recorder) -> StreamOutcome,
{
    let buf = SharedBuf::default();
    let mut rec = Recorder::jsonl_writer(Box::new(buf.clone()));
    let out = run(&mut rec);
    rec.flush().unwrap();
    drop(rec);
    let bytes = buf.0.lock().unwrap().clone();
    (out, bytes)
}

const BATCHES: [usize; 3] = [1, 3, 7];
const WORKERS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn batched_is_byte_identical_to_sequential(
        (net_seed, req_seed, pipeline_seed) in (0u64..10_000, 0u64..10_000, 0u64..10_000),
        n_requests in 8usize..=30,
        capacity_fraction in prop_oneof![Just(0.3), Just(0.6), Just(1.0)],
        algorithm in prop_oneof![
            Just(Algorithm::Heuristic(Default::default())),
            Just(Algorithm::Greedy(Default::default())),
            Just(Algorithm::Randomized(Default::default())),
        ],
    ) {
        let (net, cat) = setup(net_seed, 6);
        let reqs = make_requests(n_requests, &cat, net.num_nodes(), req_seed);
        let stream = StreamConfig {
            algorithm,
            initial_capacity_fraction: capacity_fraction,
            ..Default::default()
        };
        let (seq, seq_bytes) = run_jsonl(|rec| {
            process_stream_seeded_traced(&net, &cat, &reqs, &stream, pipeline_seed, rec)
        });
        for workers in WORKERS {
            for batch in BATCHES {
                let cfg = ParallelConfig {
                    stream: stream.clone(),
                    workers,
                    seed: pipeline_seed,
                    max_inflight: 0,
                    ..Default::default()
                };
                let (par, par_bytes) = run_jsonl(|rec| {
                    process_stream_batched_traced(&net, &cat, &reqs, &cfg, batch, rec)
                });
                prop_assert_eq!(&par.records, &seq.records,
                    "records diverged at workers={} batch={}", workers, batch);
                prop_assert_eq!(&par.final_residual, &seq.final_residual,
                    "residuals diverged at workers={} batch={}", workers, batch);
                prop_assert_eq!(&par_bytes, &seq_bytes,
                    "JSONL diverged at workers={} batch={}", workers, batch);
            }
        }
    }
}

/// Oversized batches (larger than the dispatch window or the whole stream)
/// must clamp, not crash or diverge — and batch=0 (auto) must match any
/// explicit size.
#[test]
fn batch_sizes_clamp_and_agree() {
    let (net, cat) = setup(11, 6);
    let reqs = make_requests(20, &cat, net.num_nodes(), 12);
    let stream = StreamConfig { initial_capacity_fraction: 0.4, ..Default::default() };
    let seq = process_stream_seeded(&net, &cat, &reqs, &stream, 7);
    for batch in [0usize, 1, 7, 19, 64, 1000] {
        let cfg =
            ParallelConfig { stream: stream.clone(), workers: 4, seed: 7, ..Default::default() };
        let par = process_stream_batched(&net, &cat, &reqs, &cfg, batch);
        assert_eq!(par, seq, "batch={batch}");
    }
}

/// Batching composes with a constrained in-flight window: dispatch never
/// exceeds the window regardless of batch size, and results stay sequential.
#[test]
fn batching_respects_inflight_window() {
    let (net, cat) = setup(5, 6);
    let reqs = make_requests(24, &cat, net.num_nodes(), 6);
    let stream = StreamConfig { initial_capacity_fraction: 0.4, ..Default::default() };
    let seq = process_stream_seeded(&net, &cat, &reqs, &stream, 1);
    for max_inflight in [1usize, 3, 64] {
        for batch in BATCHES {
            let cfg = ParallelConfig {
                stream: stream.clone(),
                workers: 4,
                seed: 1,
                max_inflight,
                ..Default::default()
            };
            let par = process_stream_batched(&net, &cat, &reqs, &cfg, batch);
            assert_eq!(par, seq, "max_inflight={max_inflight} batch={batch}");
        }
    }
}

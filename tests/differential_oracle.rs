//! Cross-algorithm differential test oracle.
//!
//! Property-based sweep over ~200 randomly generated small instances that
//! pins the algebraic relations between the paper's algorithms instead of
//! any single algorithm's absolute output:
//!
//! * exact ILP reliability ≥ heuristic reliability ≥ greedy reliability
//!   (under uncapped/maximizing configurations, so trim semantics cannot
//!   reorder the hierarchy);
//! * the feasible algorithms (ILP, heuristic, greedy) never violate
//!   capacity or locality;
//! * randomized rounding respects the stated violation bound: whenever
//!   Theorem 5.2's capacity premise holds, no cloudlet is loaded beyond 2×
//!   its residual — and locality is respected unconditionally;
//! * every reported reliability `u_j` is reproducible from the placements
//!   alone (recompute-from-solution matches solver-reported within 1e-9).
//!
//! The vendored proptest stub is deterministic (per-test-name seed, no
//! shrinking), so this suite exercises the same 200 instances on every run.

use mec_sfc_reliability::mecnet::workload::{generate_scenario, WorkloadConfig};
use mec_sfc_reliability::milp::BnbConfig;
use mec_sfc_reliability::relaug::heuristic::{HeuristicConfig, StopRule};
use mec_sfc_reliability::relaug::ilp::IlpConfig;
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::solution::{Outcome, SolverInfo};
use mec_sfc_reliability::relaug::{greedy, heuristic, ilp, randomized, theory};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generated small instance plus the node count of its network (the
/// premise of Theorem 5.2 references `|V|`).
fn small_instance(
    nodes: usize,
    sfc_len: usize,
    residual_fraction: f64,
    expectation: f64,
    seed: u64,
) -> (AugmentationInstance, usize) {
    let cfg = WorkloadConfig {
        nodes,
        sfc_len_range: (2, sfc_len.max(2)),
        residual_fraction,
        expectation,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = generate_scenario(&cfg, &mut rng);
    (AugmentationInstance::from_scenario(&scenario, 1), nodes)
}

/// The reported `u_j` must be a pure function of the placements: recompute
/// it from the augmentation and compare.
fn assert_metrics_reproducible(name: &str, inst: &AugmentationInstance, out: &Outcome) {
    let recomputed = out.augmentation.reliability(inst);
    assert!(
        (recomputed - out.metrics.reliability).abs() <= 1e-9,
        "{name}: reported u_j {} != recomputed {}",
        out.metrics.reliability,
        recomputed,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]
    #[test]
    fn differential_oracle(
        (nodes, sfc_len) in (12usize..=32, 2usize..=5),
        residual_fraction in prop_oneof![Just(0.25), Just(0.5), Just(1.0)],
        expectation in prop_oneof![Just(0.95), Just(0.99), Just(0.999)],
        seed in 0u64..1_000_000,
    ) {
        let (inst, num_nodes) = small_instance(nodes, sfc_len, residual_fraction, expectation, seed);

        // Maximizing configurations: no expectation trim, so the dominance
        // chain is a statement about achievable reliability mass, not about
        // where each algorithm chose to stop. No wall-clock limit (results
        // must not depend on machine speed); the node budget stays, and the
        // hierarchy is only asserted when the search completed within it.
        const MAX_NODES: usize = 50_000;
        let exact = ilp::solve(
            &inst,
            &IlpConfig {
                stop_at_expectation: false,
                bnb: BnbConfig { max_nodes: MAX_NODES, time_limit: None, ..Default::default() },
                ..Default::default()
            },
        )
        .expect("ilp");
        let search_completed = matches!(exact.solver, SolverInfo::Ilp { nodes, .. } if nodes < MAX_NODES);
        let heur = heuristic::solve(&inst, &HeuristicConfig::with_stop(StopRule::Exhaust));
        let greed = greedy::solve(&inst, &Default::default());

        // --- Hierarchy: the exact optimum dominates both feasible
        // polynomial algorithms. (heuristic >= greedy is NOT a per-instance
        // theorem — the matching can commit capacity to placements greedy
        // avoids — so that leg is checked in aggregate below.)
        //
        // Tolerance: the branch and bound proves optimality only up to its
        // relative gap (default 1e-7) and compares bounds in log-gain space
        // with floating-point slack, so on near-tie instances the heuristic
        // can edge out the "exact" optimum by a sliver (observed: 1.4e-9).
        // 5e-7 sits above that slack and far below any genuine regression.
        const HIERARCHY_TOL: f64 = 5e-7;
        if search_completed {
            prop_assert!(
                heur.metrics.reliability <= exact.metrics.reliability + HIERARCHY_TOL,
                "heuristic {} beat exact {}", heur.metrics.reliability, exact.metrics.reliability,
            );
            prop_assert!(
                greed.metrics.reliability <= exact.metrics.reliability + HIERARCHY_TOL,
                "greedy {} beat exact {}",
                greed.metrics.reliability, exact.metrics.reliability,
            );
        }

        // --- Feasible algorithms never violate capacity or locality. ---
        for (name, out) in [("ilp", &exact), ("heuristic", &heur), ("greedy", &greed)] {
            prop_assert!(out.augmentation.is_capacity_feasible(&inst), "{name} violated capacity");
            prop_assert!(out.augmentation.respects_locality(&inst), "{name} violated locality");
            prop_assert!(out.metrics.max_violation_ratio <= 1.0 + 1e-9);
        }

        // --- Randomized rounding: locality always; the 2x capacity bound
        // whenever Theorem 5.2's premise holds. ---
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let rand_out = randomized::solve(&inst, &Default::default(), &mut rng).expect("lp");
        prop_assert!(rand_out.augmentation.respects_locality(&inst));
        if theory::capacity_premise(&inst, num_nodes) {
            prop_assert!(
                rand_out.metrics.max_violation_ratio <= 2.0 + 1e-9,
                "premise holds but violation ratio is {}",
                rand_out.metrics.max_violation_ratio,
            );
        }

        // --- Reported reliability is reproducible from placements. ---
        assert_metrics_reproducible("ilp", &inst, &exact);
        assert_metrics_reproducible("heuristic", &inst, &heur);
        assert_metrics_reproducible("greedy", &inst, &greed);
        assert_metrics_reproducible("randomized", &inst, &rand_out);

        // Augmentation never loses reliability relative to bare primaries.
        let base = inst.base_reliability();
        for out in [&exact, &heur, &greed, &rand_out] {
            prop_assert!(out.metrics.reliability >= base - 1e-12);
        }
    }
}

/// heuristic >= greedy holds in aggregate, not per instance: Algorithm 2's
/// per-round matching can occasionally commit capacity to placements the
/// greedy avoids (observed worst case: greedy ahead by ~6e-6 on ~1 in 100
/// instances). The differential claim worth pinning is that the heuristic
/// wins or ties almost always and never loses badly. The vendored proptest
/// RNG is deterministic, so these 200 instances — and hence the exact
/// counts — are stable across runs.
#[test]
fn heuristic_dominates_greedy_in_aggregate() {
    use proptest::test_runner::TestRng;
    let mut rng = TestRng::deterministic("differential_oracle::heuristic_vs_greedy");
    let strat = ((12usize..=32, 2usize..=5), 0.25f64..=1.0, 0u64..1_000_000);
    let mut greedy_wins = 0usize;
    let mut worst_gap = 0.0f64;
    const CASES: usize = 200;
    for _ in 0..CASES {
        let ((nodes, sfc_len), residual_fraction, seed) = Strategy::generate(&strat, &mut rng);
        let (inst, _) = small_instance(nodes, sfc_len, residual_fraction, 0.99, seed);
        let heur = heuristic::solve(&inst, &HeuristicConfig::with_stop(StopRule::Exhaust));
        let greed = greedy::solve(&inst, &Default::default());
        let gap = greed.metrics.reliability - heur.metrics.reliability;
        if gap > 1e-9 {
            greedy_wins += 1;
            worst_gap = worst_gap.max(gap);
        }
    }
    assert!(
        greedy_wins <= CASES / 20,
        "greedy beat the heuristic on {greedy_wins}/{CASES} instances (tolerated: 5%)"
    );
    assert!(
        worst_gap <= 1e-3,
        "greedy beat the heuristic by {worst_gap} — aggregate dominance broken"
    );
}

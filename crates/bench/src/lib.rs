//! Experiment harness regenerating every figure of the paper's Section 7.
//!
//! The paper's evaluation has three figures, each with three panels:
//!
//! * Fig. 1 — sweep the SFC length 2..20 (residual capacity 25%,
//!   `r_i ∈ [0.8, 0.9]`, `l = 1`);
//! * Fig. 2 — sweep the function-reliability interval
//!   (`[0.55,0.65) … [0.85,0.95]`);
//! * Fig. 3 — sweep the residual capacity fraction (1/16 … 1).
//!
//! Panels per figure: (a) achieved SFC reliability of ILP / Randomized /
//! Heuristic, (b) the randomized algorithm's cloudlet capacity usage ratio
//! (avg/min/max; may exceed 1 because rounding can violate capacities),
//! (c) running times.
//!
//! [`run_point`] executes the per-data-point protocol: `trials` independent
//! scenarios (network, catalog, request, primary placement), each solved by
//! all algorithms, with trials fanned out across threads (deterministic via
//! per-trial derived seeds). Binaries `fig1`, `fig2`, `fig3`, `all_figs`
//! print the same series the paper plots and can dump JSON for
//! EXPERIMENTS.md.

use std::time::Duration;

use expkit::stats::Summary;
use expkit::Table;
use mecnet::workload::{generate_scenario, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::heuristic::HeuristicConfig;
use relaug::ilp::IlpConfig;
use relaug::instance::AugmentationInstance;
use relaug::randomized::RandomizedConfig;
use relaug::{greedy, heuristic, ilp, randomized};
use serde::Serialize;

/// Which algorithms a sweep runs (ILP can be skipped for very large points).
#[derive(Debug, Clone, Copy)]
pub struct AlgoSelection {
    pub ilp: bool,
    pub randomized: bool,
    pub heuristic: bool,
    pub greedy: bool,
}

impl Default for AlgoSelection {
    fn default() -> Self {
        AlgoSelection { ilp: true, randomized: true, heuristic: true, greedy: false }
    }
}

/// Everything needed to evaluate one data point of a figure.
#[derive(Debug, Clone)]
pub struct PointConfig {
    pub label: String,
    pub workload: WorkloadConfig,
    /// Locality radius `l` (paper default 1).
    pub l: u32,
    pub trials: usize,
    pub master_seed: u64,
    pub algos: AlgoSelection,
    /// Worker threads for the trial fan-out (1 = sequential).
    pub threads: usize,
}

impl PointConfig {
    pub fn new(label: impl Into<String>, workload: WorkloadConfig) -> Self {
        PointConfig {
            label: label.into(),
            workload,
            l: 1,
            trials: 40,
            master_seed: 0xC0FFEE,
            algos: AlgoSelection::default(),
            threads: default_threads(),
        }
    }
}

/// A reasonable worker count: logical cores minus one, at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get().saturating_sub(1).max(1)).unwrap_or(1)
}

/// Resolution of `--workers auto`: the machine's effective parallelism with
/// one core left free for the driver. On a single-core (or unknown) machine
/// this is `1`, which the stream/sim binaries map to their sequential
/// engines — `auto` therefore never selects the parallel engine where it
/// would be the slower choice.
pub fn auto_workers() -> usize {
    default_threads()
}

/// Per-algorithm aggregate over a point's trials.
#[derive(Debug, Clone, Serialize)]
pub struct AlgoStats {
    pub reliability: Summary,
    /// Ratio of this algorithm's reliability to the ILP's, per trial
    /// (only when the ILP ran).
    pub ratio_to_ilp: Option<Summary>,
    pub runtime_s: Summary,
    pub secondaries: Summary,
}

/// Randomized-only extras for the figures' (b) panels.
#[derive(Debug, Clone, Serialize)]
pub struct UsageStats {
    pub avg: Summary,
    pub min: Summary,
    pub max: Summary,
    /// Fraction of trials with at least one capacity violation.
    pub violation_fraction: f64,
}

/// One figure data point: per-algorithm aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct PointResult {
    pub label: String,
    pub trials: usize,
    pub ilp: Option<AlgoStats>,
    pub randomized: Option<AlgoStats>,
    pub heuristic: Option<AlgoStats>,
    pub greedy: Option<AlgoStats>,
    pub randomized_usage: Option<UsageStats>,
    /// Mean item count `N` over trials (problem size context).
    pub mean_items: f64,
}

struct TrialRow {
    ilp: Option<(f64, f64, usize)>, // (reliability, runtime_s, secondaries)
    randomized: Option<(f64, f64, usize)>,
    heuristic: Option<(f64, f64, usize)>,
    greedy: Option<(f64, f64, usize)>,
    usage: Option<(f64, f64, f64)>, // randomized avg/min/max usage
    items: usize,
}

fn run_trial(cfg: &PointConfig, seed: u64) -> TrialRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = generate_scenario(&cfg.workload, &mut rng);
    let inst = AugmentationInstance::from_scenario(&scenario, cfg.l);
    let items = inst.total_items();

    let ilp_out = if cfg.algos.ilp {
        let out = ilp::solve(&inst, &IlpConfig::default()).expect("ILP solve failed");
        Some((out.metrics.reliability, out.runtime.as_secs_f64(), out.metrics.total_secondaries))
    } else {
        None
    };
    let (rand_out, usage) = if cfg.algos.randomized {
        let out = randomized::solve(&inst, &RandomizedConfig::default(), &mut rng)
            .expect("randomized solve failed");
        (
            Some((
                out.metrics.reliability,
                out.runtime.as_secs_f64(),
                out.metrics.total_secondaries,
            )),
            Some((out.metrics.avg_usage, out.metrics.min_usage, out.metrics.max_usage)),
        )
    } else {
        (None, None)
    };
    let heu_out = if cfg.algos.heuristic {
        let out = heuristic::solve(&inst, &HeuristicConfig::default());
        Some((out.metrics.reliability, out.runtime.as_secs_f64(), out.metrics.total_secondaries))
    } else {
        None
    };
    let greedy_out = if cfg.algos.greedy {
        let out = greedy::solve(&inst, &Default::default());
        Some((out.metrics.reliability, out.runtime.as_secs_f64(), out.metrics.total_secondaries))
    } else {
        None
    };
    TrialRow {
        ilp: ilp_out,
        randomized: rand_out,
        heuristic: heu_out,
        greedy: greedy_out,
        usage,
        items,
    }
}

/// Run all trials of one data point, fanning out across threads.
pub fn run_point(cfg: &PointConfig) -> PointResult {
    let seeds: Vec<u64> =
        (0..cfg.trials).map(|i| expkit::fan_out(cfg.master_seed, i as u64)).collect();
    let rows: Vec<TrialRow> = if cfg.threads <= 1 || cfg.trials <= 1 {
        seeds.iter().map(|&s| run_trial(cfg, s)).collect()
    } else {
        // Chunk seeds across scoped worker threads; results keep trial order.
        let workers = cfg.threads.min(cfg.trials);
        let mut rows: Vec<Option<TrialRow>> = (0..cfg.trials).map(|_| None).collect();
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, TrialRow)>();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let seeds = &seeds;
                scope.spawn(move || {
                    let mut i = w;
                    while i < seeds.len() {
                        let row = run_trial(cfg, seeds[i]);
                        tx.send((i, row)).expect("collector alive");
                        i += workers;
                    }
                });
            }
            drop(tx);
            for (i, row) in rx {
                rows[i] = Some(row);
            }
        });
        rows.into_iter().map(|r| r.expect("all trials completed")).collect()
    };

    type Picker<'a> = &'a dyn Fn(&TrialRow) -> Option<(f64, f64, usize)>;
    let collect = |pick: Picker| -> Option<AlgoStats> {
        let triples: Vec<(f64, f64, usize)> = rows.iter().filter_map(pick).collect();
        if triples.is_empty() {
            return None;
        }
        let rel: Vec<f64> = triples.iter().map(|t| t.0).collect();
        let rt: Vec<f64> = triples.iter().map(|t| t.1).collect();
        let sec: Vec<f64> = triples.iter().map(|t| t.2 as f64).collect();
        let ratio = if rows.iter().all(|r| r.ilp.is_some()) {
            let ratios: Vec<f64> = rows
                .iter()
                .filter_map(|r| {
                    let (ilp_rel, _, _) = r.ilp?;
                    let (a_rel, _, _) = pick(r)?;
                    (ilp_rel > 0.0).then(|| a_rel / ilp_rel)
                })
                .collect();
            (!ratios.is_empty()).then(|| Summary::of(&ratios))
        } else {
            None
        };
        Some(AlgoStats {
            reliability: Summary::of(&rel),
            ratio_to_ilp: ratio,
            runtime_s: Summary::of(&rt),
            secondaries: Summary::of(&sec),
        })
    };

    let usage = {
        let triples: Vec<(f64, f64, f64)> = rows.iter().filter_map(|r| r.usage).collect();
        (!triples.is_empty()).then(|| UsageStats {
            avg: Summary::of(&triples.iter().map(|t| t.0).collect::<Vec<_>>()),
            min: Summary::of(&triples.iter().map(|t| t.1).collect::<Vec<_>>()),
            max: Summary::of(&triples.iter().map(|t| t.2).collect::<Vec<_>>()),
            violation_fraction: triples.iter().filter(|t| t.2 > 1.0 + 1e-9).count() as f64
                / triples.len() as f64,
        })
    };

    PointResult {
        label: cfg.label.clone(),
        trials: cfg.trials,
        ilp: collect(&|r| r.ilp),
        randomized: collect(&|r| r.randomized),
        heuristic: collect(&|r| r.heuristic),
        greedy: collect(&|r| r.greedy),
        randomized_usage: usage,
        mean_items: rows.iter().map(|r| r.items as f64).sum::<f64>() / rows.len().max(1) as f64,
    }
}

/// The three standard sweeps.
pub mod sweeps {
    use super::*;

    /// Fig. 1: SFC length 2..=20 (step 2), fixed 25% residual, r ∈ [0.8, 0.9].
    pub fn fig1_lengths() -> Vec<usize> {
        (2..=20).step_by(2).collect()
    }

    pub fn fig1_point(len: usize, trials: usize, seed: u64) -> PointConfig {
        let workload = WorkloadConfig {
            sfc_len_range: (len, len),
            reliability_range: (0.8, 0.9),
            residual_fraction: 0.25,
            ..Default::default()
        };
        let mut cfg = PointConfig::new(format!("L={len}"), workload);
        cfg.trials = trials;
        cfg.master_seed = seed;
        cfg
    }

    /// Fig. 2: function-reliability intervals.
    pub fn fig2_intervals() -> Vec<(f64, f64)> {
        vec![(0.55, 0.65), (0.65, 0.75), (0.75, 0.85), (0.85, 0.95)]
    }

    pub fn fig2_point(interval: (f64, f64), trials: usize, seed: u64) -> PointConfig {
        let workload = WorkloadConfig {
            reliability_range: interval,
            residual_fraction: 0.25,
            ..Default::default()
        };
        let mid = (interval.0 + interval.1) / 2.0;
        let mut cfg = PointConfig::new(format!("r~{mid:.1}"), workload);
        cfg.trials = trials;
        cfg.master_seed = seed;
        cfg
    }

    /// Fig. 3: residual capacity fractions 1/16 .. 1.
    pub fn fig3_fractions() -> Vec<f64> {
        vec![1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 1.0]
    }

    pub fn fig3_point(fraction: f64, trials: usize, seed: u64) -> PointConfig {
        let workload = WorkloadConfig {
            residual_fraction: fraction,
            reliability_range: (0.8, 0.9),
            ..Default::default()
        };
        let mut cfg = PointConfig::new(format!("C'={fraction:.4}"), workload);
        cfg.trials = trials;
        cfg.master_seed = seed;
        cfg
    }
}

/// Render the three panels of one figure as markdown tables.
pub fn render_figure(points: &[PointResult]) -> String {
    let mut out = String::new();

    let mut rel =
        Table::new(vec!["point", "ILP", "Randomized", "Heuristic", "Rand/ILP", "Heu/ILP"]);
    for p in points {
        let f = |s: &Option<AlgoStats>| {
            s.as_ref().map_or("-".to_string(), |a| format!("{:.4}", a.reliability.mean))
        };
        let ratio = |s: &Option<AlgoStats>| {
            s.as_ref()
                .and_then(|a| a.ratio_to_ilp.as_ref())
                .map_or("-".to_string(), |r| format!("{:.2}%", 100.0 * r.mean))
        };
        rel.add_row(vec![
            p.label.clone(),
            f(&p.ilp),
            f(&p.randomized),
            f(&p.heuristic),
            ratio(&p.randomized),
            ratio(&p.heuristic),
        ]);
    }
    out.push_str("### (a) achieved SFC reliability\n\n");
    out.push_str(&rel.to_markdown());

    let mut usage =
        Table::new(vec!["point", "avg usage", "min usage", "max usage", "viol. trials"]);
    for p in points {
        match &p.randomized_usage {
            Some(u) => usage.add_row(vec![
                p.label.clone(),
                format!("{:.3}", u.avg.mean),
                format!("{:.3}", u.min.mean),
                format!("{:.3}", u.max.mean),
                format!("{:.0}%", 100.0 * u.violation_fraction),
            ]),
            None => {
                usage.add_row(vec![p.label.clone(), "-".into(), "-".into(), "-".into(), "-".into()])
            }
        }
    }
    out.push_str("\n### (b) Randomized capacity usage ratio\n\n");
    out.push_str(&usage.to_markdown());

    let mut rt = Table::new(vec!["point", "ILP", "Randomized", "Heuristic", "N (items)"]);
    for p in points {
        let f = |s: &Option<AlgoStats>| {
            s.as_ref().map_or("-".to_string(), |a| expkit::table::fmt_duration_s(a.runtime_s.mean))
        };
        rt.add_row(vec![
            p.label.clone(),
            f(&p.ilp),
            f(&p.randomized),
            f(&p.heuristic),
            format!("{:.0}", p.mean_items),
        ]);
    }
    out.push_str("\n### (c) running time per request\n\n");
    out.push_str(&rt.to_markdown());
    out
}

/// Tiny CLI-flag parser shared by the figure binaries:
/// `--trials N --seed S --threads T --workers W --batch B --json PATH
/// --greedy --no-ilp --trace PATH --requests N --policy NAME --duration T
/// --audit-interval T --metrics-interval N|Xs --flight DIR
/// --scenario NAME|PATH --plan-cache N --match-engine NAME`.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    pub trials: usize,
    pub seed: u64,
    pub threads: usize,
    /// Worker threads for the parallel admission pipeline (`stream_exp`) or
    /// the per-policy fan-out (`sim_exp`). `1` = sequential. The flag also
    /// accepts `auto`, which resolves via [`auto_workers`] at parse time.
    pub workers: usize,
    /// Requests per speculation batch in the parallel pipeline
    /// (`stream_exp` only). `0` = auto: the dispatch window split evenly
    /// across workers.
    pub batch: usize,
    pub json: Option<String>,
    pub greedy: bool,
    pub ilp: bool,
    /// JSONL telemetry sink (binaries that support tracing).
    pub trace: Option<String>,
    /// Requests per stream (stream binaries only; `None` = binary default).
    pub requests: Option<usize>,
    /// Repair policy (`sim_exp` only; `None` = compare all policies).
    pub policy: Option<String>,
    /// Simulation horizon (`sim_exp` only; `None` = binary default).
    pub duration: Option<f64>,
    /// Audit period of the periodic-audit policy (`sim_exp` only).
    pub audit_interval: Option<f64>,
    /// Windowed telemetry: cut a `*.window` summary every `N` requests
    /// (bare integer) or `X` seconds (`Xs`); suppresses per-request events.
    pub metrics_interval: Option<obs::MetricsInterval>,
    /// Flight-recorder directory: each engine keeps a ring of recent raw
    /// events and dumps it there on panic, commit hard-error or SLO
    /// violation.
    pub flight: Option<String>,
    /// Scenario preset name or spec-file path (stream/sim binaries): builds
    /// the network, catalog and lazy request stream from `scen` instead of
    /// the toy workload fixture.
    pub scenario: Option<String>,
    /// Commit order for the parallel pipeline (`stream_exp` only):
    /// `deterministic` (default, byte-identical to sequential) or `relaxed`
    /// (sharded capacity, shard-local lock-free commits, completion-order
    /// records verified by linearization replay).
    pub commit_order: relaug::parallel::CommitOrder,
    /// Capacity shards for `--commit-order relaxed` (`0` = one per worker).
    pub shards: usize,
    /// Admission plan-cache capacity in entries (`stream_exp`; `sim_exp`
    /// parses but ignores it). `0` (default) disables the cache and keeps
    /// the byte-identity guarantees untouched.
    pub plan_cache: usize,
    /// Matching engine for the heuristic (`stream_exp`): `incremental`
    /// (default, byte-identical to rebuild), `warm` (cross-round price
    /// carry, cost-parity only) or `rebuild` (the historical per-round
    /// rebuild path).
    pub match_engine: relaug::heuristic::MatchEngine,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            trials: 40,
            seed: 0xC0FFEE,
            threads: default_threads(),
            workers: 1,
            batch: 0,
            json: None,
            greedy: false,
            ilp: true,
            trace: None,
            requests: None,
            policy: None,
            duration: None,
            audit_interval: None,
            metrics_interval: None,
            flight: None,
            scenario: None,
            commit_order: relaug::parallel::CommitOrder::Deterministic,
            shards: 0,
            plan_cache: 0,
            match_engine: relaug::heuristic::MatchEngine::default(),
        }
    }
}

impl HarnessArgs {
    pub fn parse(args: impl Iterator<Item = String>) -> Result<HarnessArgs, String> {
        let mut out = HarnessArgs::default();
        let mut it = args;
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match flag.as_str() {
                "--trials" => {
                    out.trials = value("--trials")?.parse().map_err(|e| format!("{e}"))?
                }
                "--seed" => out.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
                "--threads" => {
                    out.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?
                }
                "--workers" => {
                    let v = value("--workers")?;
                    out.workers = if v == "auto" {
                        auto_workers()
                    } else {
                        v.parse().map_err(|e| format!("{e}"))?
                    };
                }
                "--batch" => out.batch = value("--batch")?.parse().map_err(|e| format!("{e}"))?,
                "--json" => out.json = Some(value("--json")?),
                "--greedy" => out.greedy = true,
                "--no-ilp" => out.ilp = false,
                "--trace" => out.trace = Some(value("--trace")?),
                "--requests" => {
                    out.requests = Some(value("--requests")?.parse().map_err(|e| format!("{e}"))?)
                }
                "--policy" => out.policy = Some(value("--policy")?),
                "--duration" => {
                    out.duration = Some(value("--duration")?.parse().map_err(|e| format!("{e}"))?)
                }
                "--audit-interval" => {
                    out.audit_interval =
                        Some(value("--audit-interval")?.parse().map_err(|e| format!("{e}"))?)
                }
                "--metrics-interval" => {
                    out.metrics_interval =
                        Some(obs::MetricsInterval::parse(&value("--metrics-interval")?)?)
                }
                "--flight" => out.flight = Some(value("--flight")?),
                "--scenario" => out.scenario = Some(value("--scenario")?),
                "--commit-order" => {
                    out.commit_order = match value("--commit-order")?.as_str() {
                        "deterministic" => relaug::parallel::CommitOrder::Deterministic,
                        "relaxed" => relaug::parallel::CommitOrder::Relaxed,
                        other => {
                            return Err(format!(
                                "--commit-order must be deterministic or relaxed, got {other}"
                            ))
                        }
                    }
                }
                "--shards" => {
                    out.shards = value("--shards")?.parse().map_err(|e| format!("{e}"))?
                }
                "--plan-cache" => {
                    out.plan_cache = value("--plan-cache")?.parse().map_err(|e| format!("{e}"))?
                }
                "--match-engine" => {
                    out.match_engine = match value("--match-engine")?.as_str() {
                        "incremental" => relaug::heuristic::MatchEngine::Incremental,
                        "warm" => relaug::heuristic::MatchEngine::IncrementalWarm,
                        "rebuild" => relaug::heuristic::MatchEngine::Rebuild,
                        other => {
                            return Err(format!(
                                "--match-engine must be incremental, warm or rebuild, got {other}"
                            ))
                        }
                    }
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if out.trials == 0 {
            return Err("--trials must be >= 1".into());
        }
        if out.workers == 0 {
            return Err("--workers must be >= 1".into());
        }
        if out.requests == Some(0) {
            return Err("--requests must be >= 1".into());
        }
        if out.duration.is_some_and(|d| !(d > 0.0 && d.is_finite())) {
            return Err("--duration must be positive".into());
        }
        if out.audit_interval.is_some_and(|d| !(d > 0.0 && d.is_finite())) {
            return Err("--audit-interval must be positive".into());
        }
        Ok(out)
    }

    pub fn apply(&self, mut cfg: PointConfig) -> PointConfig {
        cfg.trials = self.trials;
        cfg.master_seed = self.seed;
        cfg.threads = self.threads;
        cfg.algos.greedy = self.greedy;
        cfg.algos.ilp = self.ilp;
        cfg
    }
}

/// Bounded-memory aggregator for sink-driven stream runs: the lazy engines
/// hand each [`RequestRecord`] to a callback instead of materializing a
/// result vector, and this accumulator reproduces the harness table's
/// statistics — admitted count, mean reliability, SLO rate, early-vs-late
/// reliability thirds — from O(`cap`) memory. The early/late thirds are
/// exact whenever `admitted <= 3 * cap` (always true for the toy fixtures);
/// beyond that they degrade gracefully to the first/last `cap` admitted
/// samples.
#[derive(Debug, Clone)]
pub struct StreamStats {
    pub total: usize,
    pub admitted: usize,
    pub slo_met: usize,
    sum_reliability: f64,
    first: Vec<f64>,
    last: std::collections::VecDeque<f64>,
    cap: usize,
}

impl Default for StreamStats {
    fn default() -> Self {
        StreamStats::with_cap(4096)
    }
}

impl StreamStats {
    pub fn new() -> StreamStats {
        StreamStats::default()
    }

    pub fn with_cap(cap: usize) -> StreamStats {
        assert!(cap >= 2, "early/late thirds need at least 2 retained samples");
        StreamStats {
            total: 0,
            admitted: 0,
            slo_met: 0,
            sum_reliability: 0.0,
            first: Vec::new(),
            last: std::collections::VecDeque::with_capacity(cap.min(1 << 16)),
            cap,
        }
    }

    pub fn record(&mut self, r: &relaug::stream::RequestRecord) {
        self.total += 1;
        if !r.admitted {
            return;
        }
        self.admitted += 1;
        self.sum_reliability += r.achieved_reliability;
        if r.met_expectation {
            self.slo_met += 1;
        }
        if self.first.len() < self.cap {
            self.first.push(r.achieved_reliability);
        }
        if self.last.len() == self.cap {
            self.last.pop_front();
        }
        self.last.push_back(r.achieved_reliability);
    }

    pub fn rejected(&self) -> usize {
        self.total - self.admitted
    }

    /// Mean achieved reliability over admitted requests.
    pub fn mean_reliability(&self) -> Option<f64> {
        (self.admitted > 0).then(|| self.sum_reliability / self.admitted as f64)
    }

    /// Fraction of admitted requests that met their expectation.
    pub fn expectation_rate(&self) -> Option<f64> {
        (self.admitted > 0).then(|| self.slo_met as f64 / self.admitted as f64)
    }

    /// Mean reliability of the first and last thirds of admitted requests
    /// (the stream-erosion panel); `None` below 4 admissions, mirroring the
    /// harness's historical cutoff.
    pub fn early_late_thirds(&self) -> Option<(f64, f64)> {
        if self.admitted < 4 {
            return None;
        }
        let third = (self.admitted / 3).min(self.cap);
        let early = self.first[..third].iter().sum::<f64>() / third as f64;
        let late = self.last.iter().rev().take(third).sum::<f64>() / third as f64;
        Some((early, late))
    }
}

/// Order-sensitive FNV-1a fold over a [`RequestRecord`]'s observable fields.
/// Sink-driven benches chain this across the stream to assert byte-identity
/// between engine configurations without materializing any records.
pub fn fold_record_hash(mut h: u64, r: &relaug::stream::RequestRecord) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(r.id as u64);
    eat(r.admitted as u64);
    eat(r.base_reliability.to_bits());
    eat(r.achieved_reliability.to_bits());
    eat(r.met_expectation as u64);
    eat(r.secondaries as u64);
    h
}

/// FNV-1a offset basis — the start value for [`fold_record_hash`] chains.
pub const RECORD_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Order-insensitive companion to [`fold_record_hash`] for relaxed-commit
/// runs, where records reach the sink in completion order and the
/// order-sensitive hash is undefined: each *admitted* record is hashed
/// independently from the FNV offset basis and the per-record hashes are
/// combined with a commutative wrapping sum, so two runs admitting the same
/// record set hash equal regardless of arrival order. Rejected records are
/// skipped (the admitted set is what the linearization invariant replays).
/// Start chains from `0`.
pub fn fold_admitted_set_hash(acc: u64, r: &relaug::stream::RequestRecord) -> u64 {
    if !r.admitted {
        return acc;
    }
    acc.wrapping_add(fold_record_hash(RECORD_HASH_SEED, r))
}

/// Serialize results to pretty JSON.
pub fn to_json(points: &[PointResult]) -> String {
    serde_json::to_string_pretty(points).expect("PointResult serializes")
}

/// Convenience: total wall-clock estimate string.
pub fn eta(d: Duration) -> String {
    format!("{:.1} s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> PointConfig {
        let workload = WorkloadConfig { nodes: 30, sfc_len_range: (3, 3), ..Default::default() };
        let mut cfg = PointConfig::new("test", workload);
        cfg.trials = 4;
        cfg.threads = 2;
        cfg.algos.greedy = true;
        cfg
    }

    #[test]
    fn run_point_produces_all_algorithms() {
        let res = run_point(&quick_cfg());
        assert_eq!(res.trials, 4);
        let ilp = res.ilp.as_ref().expect("ilp ran");
        let rnd = res.randomized.as_ref().expect("randomized ran");
        let heu = res.heuristic.as_ref().expect("heuristic ran");
        assert!(res.greedy.is_some());
        assert!(res.randomized_usage.is_some());
        // The ILP dominates the capacity-feasible heuristic.
        assert!(heu.reliability.mean <= ilp.reliability.mean + 1e-9);
        // All reliabilities are probabilities.
        for s in [&ilp.reliability, &rnd.reliability, &heu.reliability] {
            assert!(s.min >= 0.0 && s.max <= 1.0 + 1e-12);
        }
        let ratio = heu.ratio_to_ilp.as_ref().unwrap();
        assert!(ratio.max <= 1.0 + 1e-9);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut cfg = quick_cfg();
        cfg.threads = 1;
        let seq = run_point(&cfg);
        cfg.threads = 3;
        let par = run_point(&cfg);
        // Same seeds, same trials: deterministic aggregate (runtimes differ).
        let a = seq.ilp.unwrap().reliability;
        let b = par.ilp.unwrap().reliability;
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!(
            (seq.heuristic.unwrap().reliability.mean - par.heuristic.unwrap().reliability.mean)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn render_produces_panels() {
        let res = run_point(&quick_cfg());
        let md = render_figure(&[res]);
        assert!(md.contains("(a) achieved SFC reliability"));
        assert!(md.contains("(b) Randomized capacity usage ratio"));
        assert!(md.contains("(c) running time"));
    }

    #[test]
    fn args_parse_round_trip() {
        let args = HarnessArgs::parse(
            [
                "--trials",
                "7",
                "--seed",
                "9",
                "--greedy",
                "--no-ilp",
                "--trace",
                "t.jsonl",
                "--requests",
                "200",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(args.trials, 7);
        assert_eq!(args.seed, 9);
        assert!(args.greedy);
        assert!(!args.ilp);
        assert_eq!(args.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(args.requests, Some(200));
        assert_eq!(args.batch, 0);
        let batched =
            HarnessArgs::parse(["--workers", "4", "--batch", "3"].iter().map(|s| s.to_string()))
                .unwrap();
        assert_eq!(batched.workers, 4);
        assert_eq!(batched.batch, 3);
        let auto = HarnessArgs::parse(["--workers", "auto"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(auto.workers, auto_workers());
        assert!(auto.workers >= 1);
        assert!(HarnessArgs::parse(["--workers".to_string(), "0".to_string()].into_iter()).is_err());
        assert!(
            HarnessArgs::parse(["--workers".to_string(), "many".to_string()].into_iter()).is_err()
        );
        let sim_args = HarnessArgs::parse(
            ["--policy", "reactive", "--duration", "750.5", "--audit-interval", "4"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(sim_args.policy.as_deref(), Some("reactive"));
        assert_eq!(sim_args.duration, Some(750.5));
        assert_eq!(sim_args.audit_interval, Some(4.0));
        let obs_args = HarnessArgs::parse(
            ["--metrics-interval", "10000", "--flight", "out/flight"].iter().map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(obs_args.metrics_interval, Some(obs::MetricsInterval::Requests(10000)));
        assert_eq!(obs_args.flight.as_deref(), Some("out/flight"));
        let secs =
            HarnessArgs::parse(["--metrics-interval".to_string(), "2.5s".to_string()].into_iter())
                .unwrap();
        assert_eq!(secs.metrics_interval, Some(obs::MetricsInterval::Seconds(2.5)));
        assert!(HarnessArgs::parse(
            ["--metrics-interval".to_string(), "0".to_string()].into_iter()
        )
        .is_err());
        assert!(
            HarnessArgs::parse(["--duration".to_string(), "-1".to_string()].into_iter()).is_err()
        );
        assert!(
            HarnessArgs::parse(["--requests".to_string(), "0".to_string()].into_iter()).is_err()
        );
        assert!(HarnessArgs::parse(["--bogus".to_string()].into_iter()).is_err());
        assert!(HarnessArgs::parse(["--trials".to_string()].into_iter()).is_err());
        assert!(HarnessArgs::parse(["--trials".to_string(), "0".to_string()].into_iter()).is_err());
    }

    #[test]
    fn scenario_flag_parses() {
        let args =
            HarnessArgs::parse(["--scenario", "sagin-1k"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(args.scenario.as_deref(), Some("sagin-1k"));
        assert!(HarnessArgs::parse(["--scenario".to_string()].into_iter()).is_err());
    }

    #[test]
    fn plan_cache_flag_parses_and_defaults_off() {
        assert_eq!(HarnessArgs::default().plan_cache, 0);
        let args =
            HarnessArgs::parse(["--plan-cache", "4096"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(args.plan_cache, 4096);
        assert!(HarnessArgs::parse(["--plan-cache".to_string()].into_iter()).is_err());
        assert!(HarnessArgs::parse(["--plan-cache".to_string(), "lots".to_string()].into_iter())
            .is_err());
    }

    #[test]
    fn stream_stats_matches_outcome_statistics() {
        use mecnet::request::SfcRequest;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use relaug::stream::{process_stream_seeded, StreamConfig};

        let wl = WorkloadConfig { nodes: 40, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let network = mecnet::workload::generate_network(&wl, &mut rng);
        let catalog = mecnet::workload::generate_catalog(&wl, &mut rng);
        let requests: Vec<SfcRequest> = (0..60)
            .map(|i| SfcRequest::random(i, &catalog, (3, 5), 0.99, wl.nodes, &mut rng))
            .collect();
        let out = process_stream_seeded(&network, &catalog, &requests, &StreamConfig::default(), 7);
        let mut stats = StreamStats::new();
        let mut h = RECORD_HASH_SEED;
        for r in &out.records {
            stats.record(r);
            h = fold_record_hash(h, r);
        }
        assert_eq!(stats.total, out.records.len());
        assert_eq!(stats.admitted, out.admitted());
        assert_eq!(stats.mean_reliability(), out.mean_reliability());
        assert_eq!(stats.expectation_rate(), out.expectation_rate());
        // Thirds reproduce the historical eager computation exactly.
        let adm: Vec<f64> =
            out.records.iter().filter(|r| r.admitted).map(|r| r.achieved_reliability).collect();
        if adm.len() >= 4 {
            let third = adm.len() / 3;
            let (early, late) = stats.early_late_thirds().unwrap();
            assert!((early - adm[..third].iter().sum::<f64>() / third as f64).abs() < 1e-12);
            assert!(
                (late - adm[adm.len() - third..].iter().sum::<f64>() / third as f64).abs() < 1e-12
            );
        }
        // Hash is order-sensitive and reproducible.
        let mut h2 = RECORD_HASH_SEED;
        for r in &out.records {
            h2 = fold_record_hash(h2, r);
        }
        assert_eq!(h, h2);
        let mut h3 = RECORD_HASH_SEED;
        for r in out.records.iter().rev() {
            h3 = fold_record_hash(h3, r);
        }
        assert_ne!(h, h3);
        // The set hash is order-INsensitive: any permutation folds equal,
        // and dropping an admitted record changes it.
        let set_fwd = out.records.iter().fold(0u64, fold_admitted_set_hash);
        let set_rev = out.records.iter().rev().fold(0u64, fold_admitted_set_hash);
        assert_eq!(set_fwd, set_rev);
        let dropped = out
            .records
            .iter()
            .skip_while(|r| !r.admitted)
            .skip(1)
            .fold(0u64, fold_admitted_set_hash);
        assert_ne!(set_fwd, dropped, "admitted records must contribute");
    }

    #[test]
    fn json_serializes() {
        let res = run_point(&quick_cfg());
        let json = to_json(&[res]);
        assert!(json.contains("\"label\""));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed.as_array().unwrap().len() == 1);
    }

    #[test]
    fn sweep_configs_match_paper() {
        assert_eq!(sweeps::fig1_lengths(), vec![2, 4, 6, 8, 10, 12, 14, 16, 18, 20]);
        assert_eq!(sweeps::fig2_intervals().len(), 4);
        assert_eq!(sweeps::fig3_fractions().len(), 5);
        let p = sweeps::fig3_point(0.5, 10, 1);
        assert_eq!(p.workload.residual_fraction, 0.5);
        let p1 = sweeps::fig1_point(8, 10, 1);
        assert_eq!(p1.workload.sfc_len_range, (8, 8));
    }
}

//! Locality-radius ablation: how the paper's `l`-hop placement restriction
//! shapes attainable reliability and solver effort, for all three
//! algorithms. `l = |V|` recovers the unrestricted placement of the prior
//! work the paper differentiates itself from (Lin et al. 2020).
//!
//! Usage: `cargo run -p bench-harness --release --bin lhop_exp --
//! [--trials N] [--seed S] [--no-ilp] [--trace PATH]`
//!
//! `--trace PATH` records the first trial of every `l` as JSONL solver
//! events (one file for the whole sweep; filter on the `l` field).

use bench_harness::HarnessArgs;
use expkit::stats::Accumulator;
use expkit::Table;
use mecnet::workload::{generate_scenario, WorkloadConfig};
use obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::instance::AugmentationInstance;
use relaug::{heuristic, ilp, randomized};

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lhop_exp: {e}");
            std::process::exit(2);
        }
    };
    let mut rec = match &args.trace {
        Some(path) => Recorder::jsonl_file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("lhop_exp: cannot open trace file {path}: {e}");
            std::process::exit(2);
        }),
        None => Recorder::noop(),
    };
    println!("## Locality-radius ablation ({} trials per l)\n", args.trials);
    let mut table = Table::new(vec![
        "l",
        "ILP rel.",
        "Rand rel.",
        "Heur rel.",
        "N (items)",
        "ILP time",
        "eligible bins/fn",
    ]);
    let wl = WorkloadConfig { sfc_len_range: (6, 6), ..Default::default() };
    for &l in &[1u32, 2, 3, 99] {
        let mut ilp_rel = Accumulator::new();
        let mut rand_rel = Accumulator::new();
        let mut heur_rel = Accumulator::new();
        let mut items = Accumulator::new();
        let mut ilp_time = Accumulator::new();
        let mut eligible = Accumulator::new();
        for t in 0..args.trials {
            let seed = expkit::fan_out(args.seed, t as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let s = generate_scenario(&wl, &mut rng);
            let inst = AugmentationInstance::from_scenario(&s, l);
            items.push(inst.total_items() as f64);
            let mean_elig =
                inst.functions.iter().map(|f| f.eligible_bins.len() as f64).sum::<f64>()
                    / inst.chain_len().max(1) as f64;
            eligible.push(mean_elig);
            // Trace the first trial of each l; the rest run untraced.
            let mut noop = Recorder::noop();
            let trial_rec: &mut Recorder = if t == 0 { &mut rec } else { &mut noop };
            trial_rec.emit_with(|| {
                obs::Event::new("lhop.trial").with("l", l).with("items", inst.total_items())
            });
            if args.ilp {
                let e = ilp::solve_traced(&inst, &Default::default(), trial_rec).expect("ilp");
                ilp_rel.push(e.metrics.reliability);
                ilp_time.push(e.runtime.as_secs_f64());
            }
            let r = randomized::solve_traced(&inst, &Default::default(), &mut rng, trial_rec)
                .expect("lp");
            rand_rel.push(r.metrics.reliability);
            let h = heuristic::solve_traced(&inst, &Default::default(), trial_rec);
            heur_rel.push(h.metrics.reliability);
        }
        let label = if l >= 99 { "inf".to_string() } else { l.to_string() };
        table.add_row(vec![
            label,
            if args.ilp { format!("{:.4}", ilp_rel.summary().mean) } else { "-".into() },
            format!("{:.4}", rand_rel.summary().mean),
            format!("{:.4}", heur_rel.summary().mean),
            format!("{:.0}", items.summary().mean),
            if args.ilp {
                expkit::table::fmt_duration_s(ilp_time.summary().mean)
            } else {
                "-".into()
            },
            format!("{:.1}", eligible.summary().mean),
        ]);
    }
    println!("{}", table.to_markdown());
    rec.flush().expect("flush trace");
    if let Some(path) = &args.trace {
        println!("\nwrote {} telemetry events to {path}", rec.events_emitted());
    }
    println!(
        "\nLarger l exposes more cloudlets per function (last column), raising\n\
         attainable reliability at the price of a bigger ILP (N, time) — and of\n\
         the longer state-synchronization paths the paper's model charges\n\
         against but does not price explicitly."
    );
}

//! Summary statistics over trial results.

/// Five-number-style summary of a sample, plus a normal-approximation 95%
/// confidence half-width for the mean.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); 0 for n < 2.
    pub std: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Panics on an empty slice or non-finite entries.
    pub fn of(sample: &[f64]) -> Summary {
        assert!(!sample.is_empty(), "cannot summarize an empty sample");
        assert!(sample.iter().all(|x| x.is_finite()), "sample contains non-finite values");
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sample.iter().copied().fold(f64::INFINITY, f64::min),
            max: sample.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Half-width of the normal-approximation 95% CI for the mean.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.std / (self.n as f64).sqrt()
    }
}

/// Streaming mean/variance accumulator (Welford), for loops that do not want
/// to keep all samples.
#[derive(Debug, Clone, Copy)]
pub struct Accumulator {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Accumulator::new()
    }
}

impl Accumulator {
    pub fn new() -> Self {
        Accumulator { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn summary(&self) -> Summary {
        assert!(self.n > 0, "no samples accumulated");
        let var = if self.n > 1 { self.m2 / (self.n as f64 - 1.0) } else { 0.0 };
        Summary { n: self.n, mean: self.mean, std: var.sqrt(), min: self.min, max: self.max }
    }

    /// Fold another accumulator into this one (Chan et al. parallel
    /// variance combination), so per-worker accumulators merge to the same
    /// moments as a single-threaded pass.
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.mean += delta * other.n as f64 / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn singleton_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn accumulator_merge_matches_single_pass() {
        let left = [3.2, -1.0, 4.7];
        let right = [0.0, 2.2, 9.5, -4.0];
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for &x in &left {
            a.push(x);
        }
        for &x in &right {
            b.push(x);
        }
        a.merge(&b);
        let merged = a.summary();
        let all: Vec<f64> = left.iter().chain(&right).copied().collect();
        let whole = Summary::of(&all);
        assert_eq!(merged.n, whole.n);
        assert!((merged.mean - whole.mean).abs() < 1e-12);
        assert!((merged.std - whole.std).abs() < 1e-12);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
        // Merging an empty accumulator is the identity in both directions.
        let mut empty = Accumulator::new();
        empty.merge(&a);
        assert_eq!(empty.summary().n, merged.n);
        a.merge(&Accumulator::new());
        assert_eq!(a.summary().n, merged.n);
    }

    #[test]
    fn accumulator_matches_batch() {
        let data = [3.2, -1.0, 4.7, 0.0, 2.2, 9.5];
        let mut acc = Accumulator::new();
        for &x in &data {
            acc.push(x);
        }
        let a = acc.summary();
        let b = Summary::of(&data);
        assert_eq!(a.n, b.n);
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.std - b.std).abs() < 1e-12);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
    }
}

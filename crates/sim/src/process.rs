//! Stochastic processes of the simulator: exponential inter-event times and
//! the derivation tying each instance's failure/repair clocks to the
//! catalog's reliability `r_i`.
//!
//! An instance alternates exponentially-distributed up periods (mean MTBF)
//! and down periods (mean MTTR). The long-run fraction of time it is up —
//! its steady-state availability — is `MTBF / (MTBF + MTTR)`. The paper
//! treats `r_i` as exactly that availability, so given an operator-chosen
//! MTTR the simulator derives `MTBF_i = MTTR · r_i / (1 − r_i)`; the
//! analytic `u_j = Π_i (1 − (1 − r_i)^{n_i})` is then the steady-state
//! probability the whole chain is served, which the time-weighted empirical
//! availability of a long `NoRepair` run must converge to.

use rand::Rng;

/// Sample an exponential holding time with the given mean (inverse-CDF).
pub fn sample_exp<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
    let u: f64 = rng.gen(); // in [0, 1)
    -mean * (1.0 - u).ln()
}

/// Mean time between failures giving steady-state availability `r` at mean
/// repair time `mttr`: `MTBF = MTTR · r / (1 − r)`. `None` for `r >= 1`
/// (a perfectly reliable instance never fails).
pub fn mtbf_for_availability(r: f64, mttr: f64) -> Option<f64> {
    assert!(r > 0.0 && r <= 1.0, "reliability must be in (0, 1]");
    assert!(mttr > 0.0 && mttr.is_finite(), "MTTR must be positive");
    (r < 1.0).then(|| mttr * r / (1.0 - r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mtbf_matches_availability_identity() {
        for &(r, mttr) in &[(0.8, 1.0), (0.9, 2.5), (0.55, 0.25), (0.999, 10.0)] {
            let mtbf = mtbf_for_availability(r, mttr).unwrap();
            let availability = mtbf / (mtbf + mttr);
            assert!((availability - r).abs() < 1e-12, "r={r} mttr={mttr}: got {availability}");
        }
        assert_eq!(mtbf_for_availability(1.0, 1.0), None);
    }

    #[test]
    fn exponential_sample_mean_converges() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mean = 3.5;
        let sum: f64 = (0..n).map(|_| sample_exp(mean, &mut rng)).sum();
        let empirical = sum / n as f64;
        // Standard error is mean/sqrt(n) ≈ 0.008; allow 5 sigma.
        assert!((empirical - mean).abs() < 0.04, "empirical mean {empirical}");
    }

    #[test]
    fn samples_are_positive_and_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = sample_exp(0.01, &mut rng);
            assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn simulated_two_state_process_hits_target_availability() {
        // Alternate Exp(MTBF) up / Exp(MTTR) down periods and measure the
        // up fraction: the closed loop behind the whole simulator.
        let (r, mttr) = (0.85, 2.0);
        let mtbf = mtbf_for_availability(r, mttr).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let (mut up_time, mut total) = (0.0, 0.0);
        for _ in 0..60_000 {
            let up = sample_exp(mtbf, &mut rng);
            let down = sample_exp(mttr, &mut rng);
            up_time += up;
            total += up + down;
        }
        let availability = up_time / total;
        assert!((availability - r).abs() < 0.005, "measured {availability}, want {r}");
    }
}

//! Property tests pinning the Monte-Carlo failure injector to the paper's
//! closed forms: over random redundancy profiles, the empirical survival
//! rate must sit within four binomial standard errors of the analytic
//! `u_j = Π_i (1 − (1 − r_i)^{n_i})`, and each position's empirical outage
//! rate must match its own `(1 − r_i)^{n_i}` term.

use mecnet::graph::NodeId;
use mecnet::vnf::VnfTypeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::instance::{AugmentationInstance, Bin, FunctionSlot};
use relaug::montecarlo::simulate_failures;
use relaug::solution::Augmentation;

const TRIALS: usize = 40_000;

/// A redundancy profile: per chain position, the instance reliability plus
/// how many shared (existing) and fresh secondaries back the primary.
#[derive(Debug, Clone)]
struct Profile {
    funcs: Vec<(f64, usize, usize)>, // (reliability, existing_backups, secondaries)
}

fn arb_profile() -> impl Strategy<Value = Profile> {
    proptest::collection::vec((0.55f64..0.98, 0usize..3, 0usize..4), 1..=4)
        .prop_map(|funcs| Profile { funcs })
}

/// Materialize the profile as an instance (one roomy bin) plus an
/// augmentation holding the chosen secondary counts.
fn build(profile: &Profile) -> (AugmentationInstance, Augmentation) {
    let functions: Vec<FunctionSlot> = profile
        .funcs
        .iter()
        .enumerate()
        .map(|(i, &(reliability, existing, _))| FunctionSlot {
            vnf: VnfTypeId(i),
            demand: 100.0,
            reliability,
            primary: NodeId(0),
            eligible_bins: vec![0],
            max_secondaries: 16,
            existing_backups: existing,
        })
        .collect();
    let inst = AugmentationInstance {
        functions,
        bins: vec![Bin { node: NodeId(0), residual: 1e9 }],
        l: 1,
        expectation: 0.99,
    };
    let mut aug = Augmentation::empty(profile.funcs.len());
    for (i, &(_, _, secondaries)) in profile.funcs.iter().enumerate() {
        if secondaries > 0 {
            aug.add(i, 0, secondaries);
        }
    }
    (inst, aug)
}

/// Total instances at position `i`: primary + shared + fresh secondaries.
fn instances_at(profile: &Profile, i: usize) -> usize {
    let (_, existing, secondaries) = profile.funcs[i];
    1 + existing + secondaries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn survival_is_within_four_stderr_of_analytic_u(
        profile in arb_profile(),
        seed in 0u64..64,
    ) {
        let (inst, aug) = build(&profile);
        let analytic: f64 = profile
            .funcs
            .iter()
            .enumerate()
            .map(|(i, &(r, _, _))| 1.0 - (1.0 - r).powi(instances_at(&profile, i) as i32))
            .product();
        prop_assert!((aug.reliability(&inst) - analytic).abs() < 1e-12,
            "closed form disagrees with Augmentation::reliability");
        let mut rng = StdRng::seed_from_u64(seed);
        let report = simulate_failures(&inst, &aug, TRIALS, &mut rng);
        // Binomial stderr at the analytic mean, floored to keep the band
        // meaningful when u_j is very close to 1.
        let stderr = (analytic * (1.0 - analytic) / TRIALS as f64).sqrt().max(2.5e-4);
        prop_assert!((report.survival_rate - analytic).abs() < 4.0 * stderr,
            "MC {} vs analytic {analytic} (4σ = {})", report.survival_rate, 4.0 * stderr);
        prop_assert!((report.survival_stderr() - stderr).abs() < 5.0 * stderr,
            "reported stderr {} inconsistent with binomial {stderr}", report.survival_stderr());
    }

    #[test]
    fn outage_rate_matches_per_position_formula(
        profile in arb_profile(),
        seed in 0u64..64,
    ) {
        let (inst, aug) = build(&profile);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let report = simulate_failures(&inst, &aug, TRIALS, &mut rng);
        prop_assert_eq!(report.outage_rate.len(), profile.funcs.len());
        for (i, &(r, _, _)) in profile.funcs.iter().enumerate() {
            let q = (1.0 - r).powi(instances_at(&profile, i) as i32);
            let stderr = (q * (1.0 - q) / TRIALS as f64).sqrt().max(2.5e-4);
            prop_assert!((report.outage_rate[i] - q).abs() < 4.0 * stderr,
                "position {i}: outage {} vs (1-r)^n = {q} (4σ = {})",
                report.outage_rate[i], 4.0 * stderr);
        }
        // Survival and outages must be consistent within one run: a request
        // survives exactly when no position is in outage, so survival can
        // never exceed the smallest per-position live probability.
        let min_live = report
            .outage_rate
            .iter()
            .map(|&q| 1.0 - q)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(report.survival_rate <= min_live + 1e-12);
    }
}

//! Property tests: the branch-and-bound solver must agree with exhaustive
//! enumeration on random small binary programs, and LP relaxations must always
//! bound the integer optimum.

use milp::{solve_lp, solve_milp, LpStatus, Model, Relation, Sense};
use proptest::prelude::*;

/// A small random binary maximization knapsack-with-side-constraints model.
#[derive(Debug, Clone)]
struct RandomBinaryProgram {
    profits: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>, // (coeffs, rhs), all `<=`
}

impl RandomBinaryProgram {
    fn to_model(&self) -> Model {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = self.profits.iter().map(|&p| m.add_binary_var(p)).collect();
        for (coeffs, rhs) in &self.rows {
            let terms = vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)).collect();
            m.add_constraint(terms, Relation::Le, *rhs);
        }
        m
    }

    /// Exhaustive optimum over all 2^n assignments.
    fn brute_force(&self) -> Option<(f64, Vec<f64>)> {
        let n = self.profits.len();
        let mut best: Option<(f64, Vec<f64>)> = None;
        for mask in 0..(1u32 << n) {
            let x: Vec<f64> =
                (0..n).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
            let feasible = self.rows.iter().all(|(coeffs, rhs)| {
                let lhs: f64 = coeffs.iter().zip(&x).map(|(c, xi)| c * xi).sum();
                lhs <= rhs + 1e-9
            });
            if feasible {
                let obj: f64 = self.profits.iter().zip(&x).map(|(p, xi)| p * xi).sum();
                if best.as_ref().is_none_or(|(b, _)| obj > *b) {
                    best = Some((obj, x));
                }
            }
        }
        best
    }
}

fn arb_program() -> impl Strategy<Value = RandomBinaryProgram> {
    (2usize..=10, 1usize..=4).prop_flat_map(|(n, m)| {
        let profits = proptest::collection::vec(0.0f64..10.0, n);
        let rows =
            proptest::collection::vec((proptest::collection::vec(0.0f64..5.0, n), 0.5f64..12.0), m);
        (profits, rows).prop_map(|(profits, rows)| RandomBinaryProgram { profits, rows })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bnb_matches_brute_force(prog in arb_program()) {
        let model = prog.to_model();
        let sol = solve_milp(&model).unwrap();
        // All-zeros is always feasible for `<=` rows with rhs > 0 here, so the
        // model can never be infeasible.
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        let (best, _) = prog.brute_force().expect("zero vector always feasible");
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "bnb found {} but brute force found {}", sol.objective, best);
        prop_assert!(model.is_feasible(&sol.x, 1e-6));
    }

    #[test]
    fn lp_relaxation_bounds_ilp(prog in arb_program()) {
        let model = prog.to_model();
        let relaxed = model.relax();
        let lp = solve_lp(&relaxed).unwrap();
        prop_assert_eq!(lp.status, LpStatus::Optimal);
        let ilp = solve_milp(&model).unwrap();
        // Maximization: relaxation is an upper bound.
        prop_assert!(lp.objective >= ilp.objective - 1e-6,
            "LP {} should dominate ILP {}", lp.objective, ilp.objective);
        prop_assert!(relaxed.is_feasible(&lp.x, 1e-6));
    }

    #[test]
    fn lp_solution_is_vertex_feasible(prog in arb_program()) {
        let model = prog.to_model().relax();
        let lp = solve_lp(&model).unwrap();
        prop_assert_eq!(lp.status, LpStatus::Optimal);
        for (i, &xi) in lp.x.iter().enumerate() {
            prop_assert!((-1e-7..=1.0 + 1e-7).contains(&xi), "x[{i}] = {xi} out of [0,1]");
        }
    }
}

#[test]
fn minimization_duality_spotcheck() {
    // min 2x + 3y st x + y >= 4, x <= 3, y <= 3 -> x=3, y=1, obj 9.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(0.0, 3.0, 2.0);
    let y = m.add_var(0.0, 3.0, 3.0);
    m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
    let sol = solve_lp(&m).unwrap();
    assert!((sol.objective - 9.0).abs() < 1e-6);
    // Integer version identical here.
    let mut mi = Model::new(Sense::Minimize);
    let xi = mi.add_integer_var(0.0, 3.0, 2.0);
    let yi = mi.add_integer_var(0.0, 3.0, 3.0);
    mi.add_constraint(vec![(xi, 1.0), (yi, 1.0)], Relation::Ge, 4.0);
    let isol = solve_milp(&mi).unwrap();
    assert!((isol.objective - 9.0).abs() < 1e-6);
}

#[test]
fn larger_knapsack_against_dp() {
    // Deterministic 18-item 0/1 knapsack cross-checked against dynamic
    // programming (integer weights).
    let weights: [i64; 18] = [3, 7, 2, 9, 5, 4, 8, 6, 1, 10, 3, 7, 5, 2, 6, 4, 9, 8];
    let values: [f64; 18] = [
        4.0, 9.0, 3.0, 11.0, 6.0, 5.0, 10.0, 7.0, 1.5, 13.0, 4.5, 8.0, 6.5, 2.5, 7.5, 5.5, 12.0,
        9.5,
    ];
    let cap: i64 = 30;

    // DP over weights.
    let mut dp = vec![0.0f64; (cap + 1) as usize];
    for i in 0..18 {
        for w in (weights[i]..=cap).rev() {
            let cand = dp[(w - weights[i]) as usize] + values[i];
            if cand > dp[w as usize] {
                dp[w as usize] = cand;
            }
        }
    }
    let dp_best = dp[cap as usize];

    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = values.iter().map(|&v| m.add_binary_var(v)).collect();
    m.add_constraint(
        vars.iter().zip(&weights).map(|(&v, &w)| (v, w as f64)).collect(),
        Relation::Le,
        cap as f64,
    );
    let sol = solve_milp(&m).unwrap();
    assert!((sol.objective - dp_best).abs() < 1e-6, "bnb {} vs dp {}", sol.objective, dp_best);
}

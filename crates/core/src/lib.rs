//! # relaug — service reliability augmentation for SFC requests
//!
//! Reproduction of the core contribution of *"Reliability Augmentation of
//! Requests with Service Function Chain Requirements in Mobile Edge-Cloud
//! Networks"* (Liang, Ma, Xu, Jia, Chau — ICPP 2020).
//!
//! An admitted request `j` has a service function chain `SFC_j` whose primary
//! VNF instances already sit on cloudlets of an MEC network. Placing `k`
//! secondary (backup) instances of function `f_i` lifts its reliability to
//! `R(f_i, k) = 1 - (1 - r_i)^{k+1}`; the request's reliability is the product
//! over the chain. Secondaries may only go to cloudlets within `l` hops of the
//! primary's cloudlet, every cloudlet has a residual computing capacity, and
//! the goal is to raise the request's reliability to its expectation `ρ_j`
//! (or as high as resources allow). The problem is NP-hard (reduction from
//! the minimum-cost generalized assignment problem; Theorem 3.1).
//!
//! Three algorithms are provided, exactly the paper's lineup:
//!
//! | Paper | Module | Guarantee |
//! |---|---|---|
//! | Section 4 ILP | [`ilp`] | exact optimum (branch & bound on [`milp`]) |
//! | Algorithm 1 | [`randomized`] | approximation w.h.p., bounded capacity violation |
//! | Algorithm 2 | [`heuristic`] | feasible (never violates capacities) |
//!
//! plus a [`greedy`] baseline for ablations, the problem/instance model in
//! [`instance`], reliability math in [`reliability`], solution containers and
//! metrics in [`solution`], and the paper's analytical quantities (Chernoff
//! bounds, `Λ`, approximation ratio) in [`theory`].
//!
//! ## Quick example
//!
//! ```
//! use mecnet::workload::{generate_scenario, WorkloadConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//! use relaug::instance::AugmentationInstance;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let scenario = generate_scenario(&WorkloadConfig::default(), &mut rng);
//! let inst = AugmentationInstance::from_scenario(&scenario, 1);
//! let outcome = relaug::heuristic::solve(&inst, &Default::default());
//! assert!(outcome.metrics.reliability >= inst.base_reliability() - 1e-12);
//! ```

pub mod availability;
pub mod greedy;
pub mod heuristic;
pub mod ilp;
pub mod instance;
pub mod montecarlo;
pub mod parallel;
pub mod plancache;
pub mod randomized;
pub mod relaxed;
pub mod reliability;
pub mod report;
pub mod scratch;
pub mod solution;
pub mod stream;
pub mod theory;

pub use instance::AugmentationInstance;
pub use scratch::SolveScratch;
pub use solution::{Augmentation, Metrics, Outcome};

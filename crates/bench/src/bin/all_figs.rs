//! Runs all three figure sweeps in one go and prints a complete markdown
//! report — the source material for EXPERIMENTS.md.
//!
//! Usage: `cargo run -p bench-harness --release --bin all_figs -- [--trials N]
//! [--seed S] [--threads T] [--json PATH] [--greedy] [--no-ilp]`

use bench_harness::{render_figure, run_point, sweeps, to_json, HarnessArgs, PointResult};

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("all_figs: {e}");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    let mut all: Vec<(String, Vec<PointResult>)> = Vec::new();

    eprintln!("running Fig. 1 sweep…");
    let fig1: Vec<PointResult> = sweeps::fig1_lengths()
        .into_iter()
        .map(|len| run_point(&args.apply(sweeps::fig1_point(len, args.trials, args.seed))))
        .collect();
    all.push(("Fig. 1 — SFC length 2..20".into(), fig1));

    eprintln!("running Fig. 2 sweep…");
    let fig2: Vec<PointResult> = sweeps::fig2_intervals()
        .into_iter()
        .map(|iv| run_point(&args.apply(sweeps::fig2_point(iv, args.trials, args.seed))))
        .collect();
    all.push(("Fig. 2 — function reliability 0.6..0.9".into(), fig2));

    eprintln!("running Fig. 3 sweep…");
    let fig3: Vec<PointResult> = sweeps::fig3_fractions()
        .into_iter()
        .map(|fr| run_point(&args.apply(sweeps::fig3_point(fr, args.trials, args.seed))))
        .collect();
    all.push(("Fig. 3 — residual capacity 1/16..1".into(), fig3));

    println!("# Reproduction report ({} trials/point, seed {})\n", args.trials, args.seed);
    for (title, points) in &all {
        println!("## {title}\n");
        println!("{}", render_figure(points));
        println!();
    }
    eprintln!("total wall clock: {:.1} s", started.elapsed().as_secs_f64());

    if let Some(path) = &args.json {
        let flat: Vec<&PointResult> = all.iter().flat_map(|(_, p)| p.iter()).collect();
        let owned: Vec<PointResult> = flat.into_iter().cloned().collect();
        std::fs::write(path, to_json(&owned)).expect("write JSON");
        eprintln!("wrote {path}");
    }
}

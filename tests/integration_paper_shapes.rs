//! Shape tests: scaled-down versions of the paper's three experiments must
//! reproduce the qualitative findings of Section 7 (who wins, how metrics
//! move with each swept parameter). These use few trials and small networks
//! so they run in CI time; the full sweeps live in the bench harness.

use mec_sfc_reliability::mecnet::workload::{generate_scenario, WorkloadConfig};
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::{heuristic, ilp, randomized};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct MiniPoint {
    ilp: f64,
    randomized: f64,
    heuristic: f64,
    ilp_time: f64,
    heuristic_time: f64,
}

fn run_mini(cfg: &WorkloadConfig, trials: u64, seed0: u64) -> MiniPoint {
    let mut acc =
        MiniPoint { ilp: 0.0, randomized: 0.0, heuristic: 0.0, ilp_time: 0.0, heuristic_time: 0.0 };
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed0 + t);
        let s = generate_scenario(cfg, &mut rng);
        let inst = AugmentationInstance::from_scenario(&s, 1);
        let e = ilp::solve(&inst, &Default::default()).unwrap();
        let r = randomized::solve(&inst, &Default::default(), &mut rng).unwrap();
        let h = heuristic::solve(&inst, &Default::default());
        acc.ilp += e.metrics.reliability / trials as f64;
        acc.randomized += r.metrics.reliability / trials as f64;
        acc.heuristic += h.metrics.reliability / trials as f64;
        acc.ilp_time += e.runtime.as_secs_f64();
        acc.heuristic_time += h.runtime.as_secs_f64();
    }
    acc
}

/// Fig. 1 shape: longer chains achieve lower reliability (same resources,
/// more functions to protect), and the heuristic stays within a few percent
/// of the exact optimum.
#[test]
fn fig1_shape_reliability_decreases_with_chain_length() {
    let mk = |len: usize| WorkloadConfig {
        sfc_len_range: (len, len),
        reliability_range: (0.8, 0.9),
        residual_fraction: 0.25,
        ..Default::default()
    };
    let short = run_mini(&mk(4), 8, 100);
    let long = run_mini(&mk(16), 8, 100);
    assert!(
        long.ilp < short.ilp - 0.005,
        "longer chains must be harder: L=16 {} vs L=4 {}",
        long.ilp,
        short.ilp
    );
    // Heuristic within ~4% of exact (paper: >= 96.03%).
    assert!(
        long.heuristic >= 0.93 * long.ilp,
        "heuristic strayed: {} vs {}",
        long.heuristic,
        long.ilp
    );
    assert!(short.heuristic >= 0.96 * short.ilp);
}

/// Fig. 2 shape: more reliable VNFs -> higher chain reliability, and the gap
/// between the algorithms narrows.
#[test]
fn fig2_shape_function_reliability_lifts_all_algorithms() {
    let mk = |lo: f64, hi: f64| WorkloadConfig {
        reliability_range: (lo, hi),
        residual_fraction: 0.25,
        sfc_len_range: (5, 8),
        ..Default::default()
    };
    let low = run_mini(&mk(0.55, 0.65), 8, 300);
    let high = run_mini(&mk(0.85, 0.95), 8, 300);
    assert!(high.ilp > low.ilp + 0.02, "higher r must help: {} vs {}", high.ilp, low.ilp);
    let low_gap = (low.ilp - low.heuristic).abs();
    let high_gap = (high.ilp - high.heuristic).abs();
    assert!(
        high_gap <= low_gap + 0.01,
        "gap should narrow with reliability: low {low_gap} high {high_gap}"
    );
}

/// Fig. 3 shape: reliability grows monotonically (on average) with residual
/// capacity and saturates near the expectation.
#[test]
fn fig3_shape_residual_capacity_controls_reliability() {
    let mk = |fraction: f64| WorkloadConfig {
        residual_fraction: fraction,
        sfc_len_range: (5, 8),
        reliability_range: (0.8, 0.9),
        ..Default::default()
    };
    let scarce = run_mini(&mk(1.0 / 16.0), 8, 500);
    let quarter = run_mini(&mk(0.25), 8, 500);
    let full = run_mini(&mk(1.0), 8, 500);
    assert!(scarce.ilp < quarter.ilp, "1/16 {} vs 1/4 {}", scarce.ilp, quarter.ilp);
    assert!(quarter.ilp <= full.ilp + 0.005);
    // With full capacity the expectation (0.99) is essentially reached.
    assert!(full.ilp > 0.97, "full capacity should approach rho: {}", full.ilp);
    // All algorithms respond to scarcity.
    assert!(scarce.heuristic < quarter.heuristic);
    assert!(scarce.randomized < quarter.randomized + 0.02);
}

/// Fig. 1(c)/2(c)/3(c) shape: the ILP costs orders of magnitude more time
/// than the heuristic.
#[test]
fn runtime_ordering_ilp_slowest_heuristic_fastest() {
    let cfg =
        WorkloadConfig { sfc_len_range: (10, 10), residual_fraction: 0.25, ..Default::default() };
    let p = run_mini(&cfg, 6, 700);
    assert!(
        p.ilp_time > 3.0 * p.heuristic_time,
        "ILP ({}s) should dwarf heuristic ({}s)",
        p.ilp_time,
        p.heuristic_time
    );
}

/// Fig. 1(b)-style: the randomized algorithm's max usage ratio can exceed 1
/// (capacity violation) on at least some scarce instances, and the heuristic
/// never does.
#[test]
fn randomized_violations_exist_heuristic_never() {
    let cfg =
        WorkloadConfig { residual_fraction: 0.125, sfc_len_range: (8, 10), ..Default::default() };
    let mut saw_violation = false;
    for seed in 0..20 {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let s = generate_scenario(&cfg, &mut rng);
        let inst = AugmentationInstance::from_scenario(&s, 1);
        let r = randomized::solve(&inst, &Default::default(), &mut rng).unwrap();
        if r.metrics.max_violation_ratio > 1.0 {
            saw_violation = true;
        }
        let h = heuristic::solve(&inst, &Default::default());
        assert!(h.metrics.max_violation_ratio <= 1.0 + 1e-9);
    }
    assert!(saw_violation, "rounding should overpack at least once in 20 scarce trials");
}

//! Conversion of a [`Model`] into the bounded-variable computational form
//! used by the revised simplex:
//!
//! `min c'x  s.t.  Ax + s = rhs,  lower <= (x, s) <= upper`.
//!
//! Unlike a textbook standard form there is no variable shifting, mirroring,
//! splitting, or explicit upper-bound rows: every structural variable keeps
//! its (possibly overridden) bounds in the variable file, and every row gets
//! exactly one logical (slack) column with coefficient `+1` whose bounds
//! encode the relation:
//!
//! * `a'x <= b`  →  `s ∈ [0, +inf)`
//! * `a'x >= b`  →  `s ∈ (-inf, 0]`
//! * `a'x  = b`  →  `s ∈ [0, 0]`
//!
//! The logical columns form the identity, so the all-slack basis is always a
//! valid (if primal-infeasible) starting basis and branch-and-bound bound
//! changes never alter the matrix — only the `lower`/`upper` files. The
//! matrix is stored in CSC (compressed sparse column) layout, slack columns
//! included, so pricing and FTRAN touch only structural nonzeros.
//!
//! Branch and bound passes per-variable bound overrides so nodes never have
//! to clone and mutate the model itself.

use crate::problem::{Model, Relation, Sense};

/// A program in bounded-variable form: CSC matrix (structural columns first,
/// then one slack column per row), minimization costs, and bound files.
#[derive(Debug, Clone)]
pub struct SparseForm {
    /// Number of rows (= model constraints; no synthetic rows).
    pub nrows: usize,
    /// Number of structural columns (= model variables).
    pub nstruct: usize,
    /// Total columns: `nstruct + nrows` (slacks at the end).
    pub ncols: usize,
    /// CSC column pointers, length `ncols + 1`.
    pub col_ptr: Vec<usize>,
    /// CSC row indices, ascending within each column.
    pub row_ind: Vec<usize>,
    /// CSC values, parallel to `row_ind`.
    pub val: Vec<f64>,
    /// Minimization-sense objective, length `ncols` (zero on slacks).
    pub cost: Vec<f64>,
    /// Lower bounds, length `ncols` (`-inf` allowed).
    pub lower: Vec<f64>,
    /// Upper bounds, length `ncols` (`+inf` allowed).
    pub upper: Vec<f64>,
    /// Right-hand sides, length `nrows` (kept as given; never flipped).
    pub rhs: Vec<f64>,
    /// Per-row relation (used to suppress duals on equality rows).
    pub relations: Vec<Relation>,
    /// Whether the original model maximized (objective and duals are
    /// reported back in the original sense).
    pub maximize: bool,
}

impl SparseForm {
    /// Build the computational form of `model`, optionally overriding
    /// variable bounds (used by branch and bound; `overrides[i] =
    /// Some((lo, hi))` intersects with the model bounds).
    ///
    /// Returns `None` if some variable's effective bounds are inverted,
    /// which branch and bound treats as an infeasible node.
    pub fn build(model: &Model, overrides: Option<&[Option<(f64, f64)>]>) -> Option<SparseForm> {
        let n = model.num_vars();
        let m = model.num_constraints();
        let ncols = n + m;

        let mut lower = Vec::with_capacity(ncols);
        let mut upper = Vec::with_capacity(ncols);
        for i in 0..n {
            let mut lo = model.vars[i].lower;
            let mut hi = model.vars[i].upper;
            if let Some(ovr) = overrides {
                if let Some((l, h)) = ovr[i] {
                    lo = lo.max(l);
                    hi = hi.min(h);
                }
            }
            if lo > hi + 1e-12 {
                return None;
            }
            lower.push(lo);
            upper.push(hi.max(lo));
        }

        let maximize = model.sense == Sense::Maximize;
        let sign = if maximize { -1.0 } else { 1.0 };
        let mut cost = Vec::with_capacity(ncols);
        for i in 0..n {
            cost.push(sign * model.vars[i].objective);
        }
        cost.resize(ncols, 0.0);

        // Merge duplicate terms per (row, col) with a dense accumulator so
        // the CSC build sees each coefficient once.
        let mut acc = vec![0.0f64; n];
        let mut merged: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut relations = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for con in &model.constraints {
            let mut touched: Vec<usize> = Vec::with_capacity(con.terms.len());
            for &(v, a) in &con.terms {
                let j = v.index();
                if acc[j] == 0.0 {
                    touched.push(j);
                }
                acc[j] += a;
            }
            touched.sort_unstable();
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(touched.len());
            for &j in &touched {
                if acc[j] != 0.0 {
                    row.push((j, acc[j]));
                }
                acc[j] = 0.0;
            }
            merged.push(row);
            relations.push(con.relation);
            rhs.push(con.rhs);
        }

        // CSC: count nonzeros per column (+1 for each slack unit column),
        // prefix-sum, then fill in row order so row indices ascend within
        // every column.
        let mut col_ptr = vec![0usize; ncols + 1];
        for row in &merged {
            for &(j, _) in row {
                col_ptr[j + 1] += 1;
            }
        }
        for r in 0..m {
            col_ptr[n + r + 1] += 1; // slack column of row r
        }
        for j in 0..ncols {
            col_ptr[j + 1] += col_ptr[j];
        }
        let nnz = col_ptr[ncols];
        let mut row_ind = vec![0usize; nnz];
        let mut val = vec![0.0f64; nnz];
        let mut fill = col_ptr.clone();
        for (r, row) in merged.iter().enumerate() {
            for &(j, a) in row {
                row_ind[fill[j]] = r;
                val[fill[j]] = a;
                fill[j] += 1;
            }
        }
        for r in 0..m {
            row_ind[fill[n + r]] = r;
            val[fill[n + r]] = 1.0;
            fill[n + r] += 1;
        }

        // Slack bounds encode the relation.
        for rel in &relations {
            match rel {
                Relation::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                Relation::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                Relation::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }

        Some(SparseForm {
            nrows: m,
            nstruct: n,
            ncols,
            col_ptr,
            row_ind,
            val,
            cost,
            lower,
            upper,
            rhs,
            relations,
            maximize,
        })
    }

    /// The nonzeros of column `j` as parallel `(row indices, values)` slices.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_ind[s..e], &self.val[s..e])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Model, Relation, Sense};

    #[test]
    fn slack_bounds_encode_relations() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Le, 5.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Ge, -1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Eq, 0.5);
        let f = SparseForm::build(&m, None).unwrap();
        assert_eq!((f.nrows, f.nstruct, f.ncols), (3, 1, 4));
        // Le slack [0, inf), Ge slack (-inf, 0], Eq slack [0, 0].
        assert_eq!((f.lower[1], f.upper[1]), (0.0, f64::INFINITY));
        assert_eq!((f.lower[2], f.upper[2]), (f64::NEG_INFINITY, 0.0));
        assert_eq!((f.lower[3], f.upper[3]), (0.0, 0.0));
        // Rhs is never flipped.
        assert_eq!(f.rhs, vec![5.0, -1.0, 0.5]);
    }

    #[test]
    fn csc_columns_are_sorted_and_slacks_are_unit() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 2.0);
        m.add_constraint(vec![(y, 3.0), (x, 1.0)], Relation::Le, 4.0);
        m.add_constraint(vec![(x, 2.0)], Relation::Ge, 1.0);
        let f = SparseForm::build(&m, None).unwrap();
        let (rows, vals) = f.col(0);
        assert_eq!(rows, &[0, 1]);
        assert_eq!(vals, &[1.0, 2.0]);
        let (rows, vals) = f.col(1);
        assert_eq!(rows, &[0]);
        assert_eq!(vals, &[3.0]);
        for r in 0..f.nrows {
            let (rows, vals) = f.col(f.nstruct + r);
            assert_eq!(rows, &[r]);
            assert_eq!(vals, &[1.0]);
        }
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (x, 2.5)], Relation::Le, 4.0);
        let f = SparseForm::build(&m, None).unwrap();
        let (rows, vals) = f.col(0);
        assert_eq!(rows, &[0]);
        assert!((vals[0] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn maximize_negates_costs() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var(0.0, 1.0, 3.0);
        let f = SparseForm::build(&m, None).unwrap();
        assert!(f.maximize);
        assert!((f.cost[0] + 3.0).abs() < 1e-12);
    }

    #[test]
    fn overrides_tighten_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary_var(1.0);
        let ovr = vec![Some((1.0, 1.0))];
        let f = SparseForm::build(&m, Some(&ovr)).unwrap();
        assert_eq!((f.lower[x.index()], f.upper[x.index()]), (1.0, 1.0));
    }

    #[test]
    fn inverted_override_is_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_binary_var(1.0);
        let ovr = vec![Some((2.0, 2.0))];
        // Effective bounds [2,1] -> infeasible node.
        assert!(SparseForm::build(&m, Some(&ovr)).is_none());
    }

    #[test]
    fn near_equal_inverted_bounds_are_clamped() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 1.0, 1.0);
        // Inverted by less than the 1e-12 slop: clamped to a fixed variable
        // rather than rejected.
        let ovr = vec![Some((0.5 + 5e-13, 0.5))];
        let f = SparseForm::build(&m, Some(&ovr)).unwrap();
        assert!(f.lower[x.index()] <= f.upper[x.index()]);
    }
}

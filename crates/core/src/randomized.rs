//! Algorithm 1: the randomized LP-rounding algorithm.
//!
//! Relax the placement ILP, solve it exactly with the simplex method, then
//! round: for each item `(i, k)` the LP fractions `x̃_{i,k,u}` over eligible
//! cloudlets form a sub-distribution, and *exactly one* cloudlet is selected
//! with probability `x̃_{i,k,u}` (no cloudlet with the residual probability) —
//! the exclusive choice of step 5 of Algorithm 1, drawn independently per
//! item. The rounded solution may violate cloudlet capacities; Theorem 5.2
//! bounds the violation by 2× w.h.p. under its premises, and the metrics
//! report the realized usage ratios so the figures can plot them.

use std::time::Instant;

use milp::SolverError;
use obs::Recorder;
use rand::Rng;

use crate::ilp::build_model;
use crate::instance::AugmentationInstance;
use crate::scratch::SolveScratch;
use crate::solution::{Augmentation, Metrics, Outcome, SolverInfo};

/// Configuration of the randomized algorithm.
#[derive(Debug, Clone)]
pub struct RandomizedConfig {
    /// Item-enumeration cap (see [`crate::ilp::IlpConfig::gain_floor`]).
    pub gain_floor: f64,
    /// Number of independent rounding draws; the reliability-best draw is
    /// kept. `1` is the paper-faithful single draw; larger values are the
    /// repeated-rounding ablation.
    pub rounds: usize,
    /// After rounding, trim surplus secondaries so the solution augments
    /// *until the expectation is reached* (also reduces realized capacity
    /// violations, since trimming frees the most-loaded bins first).
    pub stop_at_expectation: bool,
    /// Warm-start each request's LP relaxation from the basis the previous
    /// request on this scratch left behind ([`milp::solve_lp_warm`]; falls
    /// back to a cold solve when the warm start is unusable). Consecutive
    /// requests on a stream differ mostly in bounds/rhs, so this typically
    /// cuts pivots sharply — but it makes the reported `lp_iterations` depend
    /// on request *history*, so it defaults to `false` to preserve the
    /// byte-identity of pinned telemetry traces.
    pub reuse_lp_basis: bool,
}

impl Default for RandomizedConfig {
    fn default() -> Self {
        RandomizedConfig {
            gain_floor: 1e-12,
            rounds: 1,
            stop_at_expectation: true,
            reuse_lp_basis: false,
        }
    }
}

/// Run Algorithm 1.
pub fn solve<R: Rng + ?Sized>(
    inst: &AugmentationInstance,
    cfg: &RandomizedConfig,
    rng: &mut R,
) -> Result<Outcome, SolverError> {
    solve_traced(inst, cfg, rng, &mut Recorder::noop())
}

/// [`solve`] with telemetry: records the LP-relaxation solve time, one
/// `randomized.draw` event per rounding draw (secondaries, reliability,
/// whether the draw violates capacity) and the repair/trim steps that bring
/// the kept draw back to the expectation.
pub fn solve_traced<R: Rng + ?Sized>(
    inst: &AugmentationInstance,
    cfg: &RandomizedConfig,
    rng: &mut R,
    rec: &mut Recorder,
) -> Result<Outcome, SolverError> {
    solve_scratch(inst, cfg, rng, rec, &mut SolveScratch::new())
}

/// [`solve_traced`] on caller-owned scratch. The randomized algorithm is
/// LP-dominated, so the scratch only covers the rounding draws: each draw is
/// built in `scratch.sol` and an owned [`Augmentation`] is materialized only
/// for reliability-improving draws. RNG consumption and results are identical
/// to the historical implementation.
pub fn solve_scratch<R: Rng + ?Sized>(
    inst: &AugmentationInstance,
    cfg: &RandomizedConfig,
    rng: &mut R,
    rec: &mut Recorder,
    scratch: &mut SolveScratch,
) -> Result<Outcome, SolverError> {
    assert!(cfg.rounds >= 1, "at least one rounding draw is required");
    let started = Instant::now();
    if inst.expectation_met_by_primaries() {
        let aug = Augmentation::empty(inst.chain_len());
        let metrics = Metrics::compute(&aug, inst);
        rec.emit_with(|| {
            obs::Event::new("randomized.early_exit")
                .with("base_reliability", metrics.base_reliability)
        });
        return Ok(Outcome {
            augmentation: aug,
            metrics,
            runtime: started.elapsed(),
            solver: SolverInfo::Randomized { lp_iterations: 0, rounds: 0, repairs: 0 },
            telemetry: rec.summary(),
        });
    }

    let ilp = build_model(inst, cfg.gain_floor, None);
    let lp_started = Instant::now();
    let relaxed = ilp.model.relax();
    if !cfg.reuse_lp_basis {
        // Drop any basis carried over from a previous request so the solve —
        // and its reported iteration count — stays history-independent.
        scratch.lp.clear();
    }
    let lp = milp::solve_lp_warm(&relaxed, None, &mut scratch.lp)?;
    let lp_elapsed = lp_started.elapsed();
    debug_assert!(lp.is_optimal(), "the relaxation is always feasible (x = 0)");
    rec.record_time("randomized.lp_solve", lp_elapsed);
    rec.count("randomized.lp_iterations", lp.iterations as u64);
    rec.emit_with(|| {
        obs::Event::new("randomized.lp_relaxation")
            .with("items", ilp.items.len())
            .with("variables", ilp.vars.len())
            .with("iterations", lp.iterations)
            .with("objective", lp.objective)
    });

    // Group LP fractions per item: (bin, fraction) lists.
    let mut fractions: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ilp.items.len()];
    for &(idx, b, v) in &ilp.vars {
        let val = lp.x[v.index()].clamp(0.0, 1.0);
        if val > 1e-12 {
            fractions[idx].push((b, val));
        }
    }

    let mut best: Option<Augmentation> = None;
    let mut best_rel = f64::NEG_INFINITY;
    for round in 0..cfg.rounds {
        let sol = &mut scratch.sol;
        sol.begin(inst.chain_len());
        for (idx, dist) in fractions.iter().enumerate() {
            if dist.is_empty() {
                continue;
            }
            // Exclusive categorical draw: P(bin b) = x̃_b, P(none) = 1 - Σ x̃.
            let mut u = rng.gen::<f64>();
            for &(b, p) in dist {
                if u < p {
                    sol.add(ilp.items[idx].func, b);
                    break;
                }
                u -= p;
            }
        }
        let rel = sol.reliability(inst);
        rec.count("randomized.draws", 1);
        rec.emit_with(|| {
            let aug = sol.materialize();
            obs::Event::new("randomized.draw")
                .with("round", round)
                .with("secondaries", aug.total_secondaries())
                .with("reliability", rel)
                .with("capacity_feasible", aug.is_capacity_feasible(inst))
                .with("kept", rel > best_rel)
        });
        if rel > best_rel {
            best_rel = rel;
            best = Some(sol.materialize());
        }
    }
    let mut aug = best.expect("rounds >= 1");
    let mut repairs = 0;
    if cfg.stop_at_expectation {
        repairs = aug.trim_to_expectation(inst);
        rec.count("randomized.repairs", repairs as u64);
        if repairs > 0 {
            rec.emit_with(|| {
                obs::Event::new("randomized.repair")
                    .with("removed", repairs)
                    .with("reliability", aug.reliability(inst))
                    .with("capacity_feasible", aug.is_capacity_feasible(inst))
            });
        }
    }
    debug_assert!(aug.respects_locality(inst));
    let metrics = Metrics::compute(&aug, inst);
    Ok(Outcome {
        augmentation: aug,
        metrics,
        runtime: started.elapsed(),
        solver: SolverInfo::Randomized {
            lp_iterations: lp.iterations,
            rounds: cfg.rounds,
            repairs,
        },
        telemetry: rec.summary(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Bin, FunctionSlot};
    use mecnet::graph::NodeId;
    use mecnet::vnf::VnfTypeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(residual: f64, expectation: f64) -> AugmentationInstance {
        AugmentationInstance {
            functions: vec![FunctionSlot {
                vnf: VnfTypeId(0),
                demand: 100.0,
                reliability: 0.8,
                primary: NodeId(0),
                eligible_bins: vec![0],
                max_secondaries: (residual / 100.0).floor() as usize,
                existing_backups: 0,
            }],
            bins: vec![Bin { node: NodeId(0), residual }],
            l: 1,
            expectation,
        }
    }

    #[test]
    fn early_exit_when_base_suffices() {
        let inst = instance(300.0, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let out = solve(&inst, &RandomizedConfig::default(), &mut rng).unwrap();
        assert_eq!(out.metrics.total_secondaries, 0);
        assert_eq!(out.solver, SolverInfo::Randomized { lp_iterations: 0, rounds: 0, repairs: 0 });
    }

    #[test]
    fn traced_solve_records_lp_and_draws() {
        let inst = instance(300.0, 0.999999);
        let mut rng = StdRng::seed_from_u64(3);
        let mut rec = Recorder::memory();
        let cfg = RandomizedConfig { rounds: 4, ..Default::default() };
        let out = solve_traced(&inst, &cfg, &mut rng, &mut rec).unwrap();
        assert_eq!(out.telemetry.counter("randomized.draws"), 4);
        let draws: Vec<_> = rec.events().iter().filter(|e| e.kind == "randomized.draw").collect();
        assert_eq!(draws.len(), 4);
        assert!(rec.events().iter().any(|e| e.kind == "randomized.lp_relaxation"));
        assert!(out.telemetry.timing_s("randomized.lp_solve") > 0.0);
        let SolverInfo::Randomized { lp_iterations, rounds, .. } = out.solver else {
            panic!("wrong solver info")
        };
        assert_eq!(rounds, 4);
        assert_eq!(out.telemetry.counter("randomized.lp_iterations"), lp_iterations as u64);
    }

    #[test]
    fn integral_lp_rounds_exactly() {
        // Single function, single bin: the LP optimum is integral (all slots
        // selected), so rounding is deterministic.
        let inst = instance(300.0, 0.999999);
        let mut rng = StdRng::seed_from_u64(2);
        let out = solve(&inst, &RandomizedConfig::default(), &mut rng).unwrap();
        assert_eq!(out.augmentation.counts(), vec![3]);
        assert!(out.augmentation.is_capacity_feasible(&inst));
    }

    #[test]
    fn fractional_capacity_rounds_stochastically() {
        // Two identical functions share one bin that fits 1.5 instances: the
        // LP saturates one item and places the other at fraction 0.5, so the
        // rounded count is 1 or 2 depending on the draw.
        let mk_slot = || FunctionSlot {
            vnf: VnfTypeId(0),
            demand: 100.0,
            reliability: 0.8,
            primary: NodeId(0),
            eligible_bins: vec![0],
            max_secondaries: 1,
            existing_backups: 0,
        };
        let inst = AugmentationInstance {
            functions: vec![mk_slot(), mk_slot()],
            bins: vec![Bin { node: NodeId(0), residual: 150.0 }],
            l: 1,
            expectation: 0.999999,
        };
        let mut seen_one = false;
        let mut seen_two = false;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = solve(&inst, &RandomizedConfig::default(), &mut rng).unwrap();
            match out.metrics.total_secondaries {
                0 | 1 => seen_one = true,
                2 => {
                    seen_two = true;
                    // Two secondaries overpack the bin: violation visible.
                    assert!(out.metrics.max_violation_ratio > 1.0);
                }
                n => panic!("unexpected count {n}"),
            }
        }
        assert!(seen_one && seen_two, "rounding should randomize across seeds");
    }

    #[test]
    fn repeated_rounding_never_hurts() {
        let inst = instance(150.0, 0.999999);
        let mut best_single = 0.0f64;
        let mut best_multi = 0.0f64;
        for seed in 0..10 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let s = solve(&inst, &RandomizedConfig { rounds: 1, ..Default::default() }, &mut r1)
                .unwrap();
            let m = solve(&inst, &RandomizedConfig { rounds: 8, ..Default::default() }, &mut r2)
                .unwrap();
            best_single = best_single.max(s.metrics.reliability);
            best_multi = best_multi.max(m.metrics.reliability);
            assert!(
                m.metrics.reliability >= s.metrics.reliability - 1e-12
                    || m.metrics.reliability > 0.0
            );
        }
        assert!(best_multi >= best_single - 1e-12);
    }

    #[test]
    fn locality_always_respected() {
        let inst = instance(500.0, 0.9999999);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = solve(&inst, &RandomizedConfig::default(), &mut rng).unwrap();
            assert!(out.augmentation.respects_locality(&inst));
        }
    }
}

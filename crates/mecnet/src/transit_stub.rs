//! GT-ITM's transit-stub hierarchical topology model.
//!
//! The paper cites GT-ITM for topology generation; besides the flat Waxman
//! model (see [`crate::topology`]), GT-ITM's flagship mode is the
//! **transit-stub** hierarchy: a small Waxman graph of *transit domains*
//! (backbones), each transit node expanded into a Waxman transit subgraph,
//! with several *stub domains* (access networks) hung off every transit
//! node. MEC cloudlets naturally sit at the transit/stub attachment points,
//! so this generator is useful for locality-sensitivity studies beyond the
//! flat 100-node default.

use crate::graph::{Graph, NodeId};
use crate::topology::embed_waxman;
use rand::Rng;

/// Intra-domain Waxman `beta` (locality); fixed to keep small domains
/// connected before repair.
const INTRA_BETA: f64 = 0.4;

/// Parameters of the transit-stub hierarchy.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TransitStubConfig {
    /// Number of transit domains (top-level Waxman graph size).
    pub transit_domains: usize,
    /// Nodes per transit domain.
    pub transit_nodes: usize,
    /// Stub domains attached to each transit node.
    pub stubs_per_transit_node: usize,
    /// Nodes per stub domain.
    pub stub_nodes: usize,
    /// Edge density inside domains (Waxman `alpha`; `beta` fixed at 0.4 to
    /// keep small domains connected before repair).
    pub intra_alpha: f64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        // ~1 transit domain x 4 transit nodes x 3 stubs x 8 nodes ≈ 100 APs,
        // matching the paper's scale.
        TransitStubConfig {
            transit_domains: 1,
            transit_nodes: 4,
            stubs_per_transit_node: 3,
            stub_nodes: 8,
            intra_alpha: 0.6,
        }
    }
}

impl TransitStubConfig {
    /// Total node count of the generated graph.
    pub fn total_nodes(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes;
        transit + transit * self.stubs_per_transit_node * self.stub_nodes
    }
}

/// Node roles in a transit-stub graph, parallel to the node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Backbone node of transit domain `domain`.
    Transit { domain: usize },
    /// Node of the `stub`-th stub domain of transit node `attached_to`.
    Stub { attached_to: usize },
}

/// Generate a transit-stub graph. Returns the graph and the role of each
/// node (transit nodes are good cloudlet sites).
pub fn transit_stub<R: Rng + ?Sized>(
    cfg: &TransitStubConfig,
    rng: &mut R,
) -> (Graph, Vec<NodeRole>) {
    assert!(cfg.transit_domains >= 1);
    assert!(cfg.transit_nodes >= 1);
    assert!(cfg.stub_nodes >= 1);
    let mut g = Graph::new(cfg.total_nodes());
    let mut roles = Vec::with_capacity(cfg.total_nodes());
    let mut next = 0usize;

    // 1. Transit domains: an internally-connected Waxman subgraph each.
    let mut transit_ids: Vec<Vec<usize>> = Vec::with_capacity(cfg.transit_domains);
    for domain in 0..cfg.transit_domains {
        let ids: Vec<usize> = (0..cfg.transit_nodes)
            .map(|_| {
                let id = next;
                next += 1;
                roles.push(NodeRole::Transit { domain });
                id
            })
            .collect();
        embed_waxman(&mut g, &ids, cfg.intra_alpha, INTRA_BETA, rng);
        transit_ids.push(ids);
    }
    // 2. Inter-domain transit links: a ring over domains (plus the intra
    //    structure this gives a connected backbone for > 1 domain).
    for d in 0..cfg.transit_domains {
        if cfg.transit_domains > 1 {
            let a = transit_ids[d][rng.gen_range(0..cfg.transit_nodes)];
            let e = (d + 1) % cfg.transit_domains;
            let b = transit_ids[e][rng.gen_range(0..cfg.transit_nodes)];
            g.add_edge(NodeId(a), NodeId(b));
        }
    }
    // 3. Stub domains: internally-connected Waxman subgraphs, one gateway
    //    edge to their transit node.
    for ids in &transit_ids {
        for &tnode in ids {
            for _ in 0..cfg.stubs_per_transit_node {
                let stub_ids: Vec<usize> = (0..cfg.stub_nodes)
                    .map(|_| {
                        let id = next;
                        next += 1;
                        roles.push(NodeRole::Stub { attached_to: tnode });
                        id
                    })
                    .collect();
                embed_waxman(&mut g, &stub_ids, cfg.intra_alpha, INTRA_BETA, rng);
                let gateway = stub_ids[rng.gen_range(0..stub_ids.len())];
                g.add_edge(NodeId(tnode), NodeId(gateway));
            }
        }
    }
    debug_assert_eq!(next, cfg.total_nodes());
    (g, roles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_scale_matches_paper() {
        let cfg = TransitStubConfig::default();
        assert_eq!(cfg.total_nodes(), 4 + 4 * 3 * 8); // 100
    }

    #[test]
    fn generated_graph_is_connected_with_roles() {
        let cfg = TransitStubConfig::default();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, roles) = transit_stub(&cfg, &mut rng);
            assert_eq!(g.num_nodes(), cfg.total_nodes());
            assert_eq!(roles.len(), g.num_nodes());
            assert!(g.is_connected(), "seed {seed} produced a disconnected graph");
            let transit = roles.iter().filter(|r| matches!(r, NodeRole::Transit { .. })).count();
            assert_eq!(transit, 4);
        }
    }

    #[test]
    fn stubs_attach_to_their_transit_node() {
        let cfg = TransitStubConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let (g, roles) = transit_stub(&cfg, &mut rng);
        // Every stub node must reach its transit node without crossing
        // another stub domain: path through the gateway keeps hops small.
        for (i, role) in roles.iter().enumerate() {
            if let NodeRole::Stub { attached_to } = role {
                let d = g.hop_distance(NodeId(i), NodeId(*attached_to)).unwrap();
                assert!(
                    d <= cfg.stub_nodes as u32 + 1,
                    "stub node {i} is {d} hops from its transit node"
                );
            }
        }
    }

    #[test]
    fn multiple_transit_domains_connected() {
        let cfg = TransitStubConfig {
            transit_domains: 3,
            transit_nodes: 3,
            stubs_per_transit_node: 1,
            stub_nodes: 4,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = transit_stub(&cfg, &mut rng);
        assert_eq!(g.num_nodes(), cfg.total_nodes());
        assert!(g.is_connected());
    }

    #[test]
    fn hierarchy_creates_locality() {
        // Average distance between nodes of the same stub must be far below
        // the average distance across stubs.
        let cfg = TransitStubConfig::default();
        let mut rng = StdRng::seed_from_u64(11);
        let (g, roles) = transit_stub(&cfg, &mut rng);
        let stub_nodes: Vec<usize> = roles
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, NodeRole::Stub { .. }))
            .map(|(i, _)| i)
            .collect();
        let mut same = Vec::new();
        let mut cross = Vec::new();
        for (a_pos, &a) in stub_nodes.iter().enumerate() {
            let da = g.hop_distances(NodeId(a));
            for &b in stub_nodes.iter().skip(a_pos + 1) {
                let d = da[b] as f64;
                let same_stub = match (roles[a], roles[b]) {
                    (NodeRole::Stub { attached_to: x }, NodeRole::Stub { attached_to: y }) => {
                        x == y
                    }
                    _ => false,
                };
                if same_stub {
                    same.push(d);
                } else {
                    cross.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) + 1.0 < mean(&cross),
            "no locality: same-stub {} vs cross-stub {}",
            mean(&same),
            mean(&cross)
        );
    }
}

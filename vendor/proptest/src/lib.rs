//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators this workspace uses — ranges, tuples,
//! `Just`, `any::<bool>()`, `collection::vec`, `prop_map` / `prop_flat_map`,
//! `prop_oneof!` — plus the `proptest!` test macro and `prop_assert*` macros.
//! Differences from the real crate: no shrinking (a failing case panics with
//! the case index so it can be replayed), and the per-test RNG is seeded from
//! a hash of the test's module path + name, so runs are deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    use super::*;

    /// Deterministic RNG handed to strategies by the `proptest!` macro.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

use test_runner::TestRng;

/// Per-block configuration; only `cases` is honoured by this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Union of same-valued strategies, chosen uniformly — backs `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.0.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Treat as half-open: fine for the tolerances property tests use.
                rng.0.gen_range(*self.start()..*self.end())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident . $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.0.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! arb_int {
    ($($t:ty => $s:ident),*) => {$(
        pub struct $s;
        impl Strategy for $s {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = $s;
            fn arbitrary() -> $s { $s }
        }
    )*};
}

arb_int!(u8 => ArbU8, u16 => ArbU16, u32 => ArbU32, u64 => ArbU64, usize => ArbUsize,
         i8 => ArbI8, i16 => ArbI16, i32 => ArbI32, i64 => ArbI64, isize => ArbIsize);

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::*;

    /// Size specifier for [`vec`]: a fixed length or a length range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Raised by `prop_assume!` to skip a case; caught by the `proptest!` driver.
#[doc(hidden)]
pub struct AssumeRejected;

#[macro_export]
macro_rules! prop_oneof {
    // `.boxed()` (not `as BoxedStrategy<_>`) so the element type is the
    // strategy's associated `Value` — resolved eagerly, before integer-literal
    // fallback can pin comparisons in downstream closures to `i32`.
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::AssumeRejected);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Each strategy expression is evaluated once, outside the case loop.
            let __strats = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let __run = |__rng: &mut $crate::test_runner::TestRng|
                    -> Result<(), $crate::AssumeRejected> {
                    let ($($pat,)+) = $crate::Strategy::generate(&__strats, __rng);
                    $body
                    Ok(())
                };
                match __run(&mut __rng) {
                    Ok(()) => {}
                    Err($crate::AssumeRejected) => continue,
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..200 {
            let x = Strategy::generate(&(1usize..=6), &mut rng);
            assert!((1..=6).contains(&x));
            let y = Strategy::generate(&(0.0f64..50.0), &mut rng);
            assert!((0.0..50.0).contains(&y));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("vecsize");
        let strat = crate::collection::vec(0.0f64..1.0, 2..=5);
        for _ in 0..50 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let strat = prop_oneof![Just(0u8), Just(1u8)];
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_end_to_end((a, b) in (0u32..10, 0u32..10), s in crate::collection::vec(any::<bool>(), 3)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(s.len(), 3);
        }
    }
}

//! Property tests pinning [`mecnet::neighborhood::NeighborhoodIndex`] to the
//! BFS reference: on random topologies and cloudlet subsets, every node's
//! CSR slice must equal `Graph::l_neighborhood_closed(v, l)` filtered to
//! cloudlets — same elements in the same (ascending) order — for every
//! radius the streaming pipeline uses.

use mecnet::graph::NodeId;
use mecnet::neighborhood::NeighborhoodIndex;
use mecnet::topology::erdos_renyi;
use mecnet::workload::{generate_network, WorkloadConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Index slices == BFS closed neighborhood filtered to cloudlets, in the
    /// same order, on arbitrary (possibly disconnected) random graphs with
    /// an arbitrary cloudlet subset, for l in 0..4.
    #[test]
    fn index_matches_bfs_reference(
        seed in 0u64..10_000,
        n in 2usize..30,
        p in 0.05f64..0.7,
        cloudlet_bits in 0u32..(1 << 16),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, p, &mut rng);
        // Carve an arbitrary cloudlet subset out of the low bits (ascending,
        // as MecNetwork::cloudlet_ids guarantees).
        let cloudlets: Vec<NodeId> =
            (0..n).filter(|&v| cloudlet_bits & (1 << (v % 16)) != 0).map(NodeId).collect();
        let is_cloudlet = |u: NodeId| cloudlets.binary_search(&u).is_ok();
        for l in 0u32..4 {
            let idx = NeighborhoodIndex::build(&g, &cloudlets, l);
            prop_assert_eq!(idx.l(), l);
            prop_assert_eq!(idx.num_nodes(), n);
            for v in g.nodes() {
                let expected: Vec<NodeId> = g
                    .l_neighborhood_closed(v, l)
                    .into_iter()
                    .filter(|&u| is_cloudlet(u))
                    .collect();
                prop_assert_eq!(
                    idx.cloudlets_within(v),
                    expected.as_slice(),
                    "mismatch at v={} l={}", v, l
                );
            }
        }
    }

    /// Same equivalence on the generated workload networks (the topology the
    /// experiments actually run on), through the network's own cached-index
    /// entry point.
    #[test]
    fn cached_index_matches_network_bfs(seed in 0u64..10_000, l in 0u32..4) {
        let cfg = WorkloadConfig { nodes: 40, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generate_network(&cfg, &mut rng);
        let idx = net.neighborhood_index(l);
        for v in net.graph().nodes() {
            let expected = net.cloudlets_within(v, l);
            prop_assert_eq!(idx.cloudlets_within(v), expected.as_slice());
        }
        // The cache returns the same index (not a rebuild) on re-query.
        let again = net.neighborhood_index(l);
        prop_assert!(std::sync::Arc::ptr_eq(&idx, &again));
    }
}

//! Concurrency model of the lock-free shard path: real threads race
//! reserve/commit/abort on one shard and capacity must be conserved exactly.
//!
//! The test is written to run under miri (the nightly CI job runs
//! `cargo miri test -p mecnet -- reserve commit`, which picks these tests up
//! by name): iteration counts shrink under `cfg(miri)`, there are no clocks
//! or I/O, and every amount is integer-valued so the conservation checks are
//! floating-point-exact — f64 adds/subtracts of integers this small are
//! lossless, so "no lost or double-counted capacity" can be asserted with
//! `==`, not a tolerance.

use mecnet::graph::{Graph, NodeId};
use mecnet::shard::{ShardPartition, ShardedCapacity};
use mecnet::MecNetwork;
use std::sync::atomic::{AtomicU64, Ordering};

const NODES: usize = 4;

#[cfg(miri)]
const ITERS: usize = 40;
#[cfg(not(miri))]
const ITERS: usize = 20_000;

fn fixture() -> (MecNetwork, ShardedCapacity) {
    // A 4-clique, every node a cloudlet, one shard: maximal same-shard
    // contention.
    let mut g = Graph::new(NODES);
    for a in 0..NODES {
        for b in a + 1..NODES {
            g.add_edge(NodeId(a), NodeId(b));
        }
    }
    let net = MecNetwork::new(g, vec![1000.0; NODES]);
    let nbhd = net.neighborhood_index(1);
    let part = ShardPartition::build(&net, &nbhd, 1);
    let initial = net.residual_capacities(1.0);
    let cap = ShardedCapacity::new(&net, &initial, part, false);
    (net, cap)
}

/// Two workers race multi-node reserve→commit / reserve→abort cycles on one
/// shard. Afterwards the residual of every node must equal exactly
/// `initial - committed debits`: nothing lost (an abort that failed to
/// return capacity), nothing double-counted (a rollback that returned
/// capacity twice), never negative in between.
#[test]
fn racing_reserve_commit_abort_conserves_capacity_exactly() {
    let (_net, cap) = fixture();
    // Per-node committed totals, updated by whichever thread commits.
    let committed: Vec<AtomicU64> = (0..NODES).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for t in 0..2usize {
            let cap = &cap;
            let committed = &committed;
            scope.spawn(move || {
                // Each thread debits a rotating pair of nodes; amounts are
                // small integers so that thousands of commits still fit.
                for i in 0..ITERS {
                    let a = (t + i) % NODES;
                    let b = (t + i + 1) % NODES;
                    let amount = 1.0 + ((i % 3) as f64);
                    let debits = [(NodeId(a), amount), (NodeId(b), amount)];
                    match cap.try_reserve(&debits) {
                        Ok(mut resv) => {
                            if i % 2 == 0 {
                                cap.commit(&mut resv, i as u64).expect("pending commits");
                                committed[a].fetch_add(amount as u64, Ordering::Relaxed);
                                committed[b].fetch_add(amount as u64, Ordering::Relaxed);
                            } else {
                                cap.abort(&mut resv).expect("pending aborts");
                            }
                        }
                        Err(_) => {
                            // Exhausted mid-run: fine, conservation is what
                            // we check at the end.
                        }
                    }
                    // The residual a racing reader observes is never
                    // negative and never above capacity.
                    let r = cap.residual(a);
                    assert!((0.0..=1000.0).contains(&r), "residual {r} out of range");
                }
            });
        }
    });
    for (v, taken) in committed.iter().enumerate() {
        let expected = 1000.0 - taken.load(Ordering::Relaxed) as f64;
        assert_eq!(
            cap.residual(v),
            expected,
            "node {v}: residual must equal initial minus committed debits exactly"
        );
    }
}

/// Rollback race: thread A reserves (node0, node1) while thread B keeps
/// node1 nearly full, forcing A's multi-node reserve to fail its second leg
/// and roll back the first. Every failed reserve must be capacity-neutral
/// even while B churns.
#[test]
fn failed_reserve_rollback_is_capacity_neutral_under_contention() {
    let (_net, cap) = fixture();
    // B pins node 1 to near-zero, toggling so A's second leg sometimes fits.
    std::thread::scope(|scope| {
        let cap_a = &cap;
        let a = scope.spawn(move || {
            let mut commits = 0u64;
            for i in 0..ITERS {
                let debits = [(NodeId(0), 5.0), (NodeId(1), 600.0)];
                if let Ok(mut resv) = cap_a.try_reserve(&debits) {
                    // Immediately return it: node 0 must round-trip exactly.
                    cap_a.abort(&mut resv).expect("pending aborts");
                    commits += 1;
                }
                let _ = i;
            }
            commits
        });
        let cap_b = &cap;
        scope.spawn(move || {
            for _ in 0..ITERS {
                if cap_b.try_debit(1, 900.0).is_ok() {
                    cap_b.credit(1, 900.0);
                }
            }
        });
        let _ = a.join().expect("thread A");
    });
    assert_eq!(cap.residual(0), 1000.0, "node 0 saw only reserves that were rolled back");
    assert_eq!(cap.residual(1), 1000.0, "node 1's churn must round-trip exactly");
    assert_eq!(cap.residual(2), 1000.0);
}

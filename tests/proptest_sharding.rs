//! Property tests for the sharded-capacity substrate (`mecnet::shard`).
//!
//! Two families of guarantees:
//!
//! 1. **Partition invariants** — on random Waxman workload networks and on
//!    the scenario-zoo presets: every cloudlet lands in exactly one shard,
//!    non-cloudlets in none, the shard count respects the request (clamped
//!    to the cloudlet count), every shard is non-empty, and `classify` is
//!    consistent with `shard_of`. The headline locality claim is pinned on
//!    `sagin-1k`: at `l = 2`, at least 80% of covered nodes have a
//!    single-shard footprint — the fraction of requests eligible for the
//!    lock-free shard-local commit path. (The builder's adaptive merge pass
//!    is what earns this on hub-and-spoke hierarchies; see the sagin test.)
//!
//! 2. **Reservation exactness** — a cross-shard reserve→abort round-trip
//!    restores every residual bit-for-bit, and reserve→commit debits
//!    exactly the requested amounts (integer amounts, so floating point
//!    cannot blur the comparison) while the commit log records them.
//!
//! The vendored proptest stub is deterministic (per-test-name seed, no
//! shrinking), so every run exercises the same instances.

use mec_sfc_reliability::mecnet::graph::NodeId;
use mec_sfc_reliability::mecnet::network::MecNetwork;
use mec_sfc_reliability::mecnet::shard::{FootprintClass, ShardPartition, ShardedCapacity};
use mec_sfc_reliability::mecnet::workload::{generate_network, WorkloadConfig};
use mec_sfc_reliability::scen::ScenarioSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Core partition invariants, checked on every topology below.
fn check_partition(net: &MecNetwork, l: u32, requested: usize) -> ShardPartition {
    let nbhd = net.neighborhood_index(l);
    let partition = ShardPartition::build(net, &nbhd, requested);
    let cloudlets = net.cloudlet_ids();

    // Shard count: >= 1, <= requested (when requested >= 1), <= cloudlets.
    let k = partition.num_shards();
    assert!(k >= 1, "at least one shard");
    assert!(k <= requested.max(1), "built {k} shards for request {requested}");
    assert!(k <= cloudlets.len().max(1), "more shards than cloudlets");

    // Every cloudlet in exactly one shard; membership lists are consistent
    // with the inverse map and disjoint (counted coverage == cloudlets).
    let mut covered = 0usize;
    for s in 0..k {
        assert!(!partition.members(s).is_empty(), "shard {s} is empty");
        for &c in partition.members(s) {
            assert_eq!(partition.shard_of(c), Some(s), "member map disagrees with shard_of");
            covered += 1;
        }
    }
    assert_eq!(covered, cloudlets.len(), "cloudlets covered exactly once");

    // Non-cloudlet nodes belong to no shard.
    for v in 0..net.num_nodes() {
        let id = NodeId(v);
        if !net.is_cloudlet(id) {
            assert_eq!(partition.shard_of(id), None, "non-cloudlet {v} got a shard");
        }
    }

    // classify() agrees with shard_of on every node's footprint.
    for v in 0..net.num_nodes() {
        let footprint = nbhd.cloudlets_within(NodeId(v));
        match partition.classify(footprint) {
            FootprintClass::Empty => assert!(footprint.is_empty()),
            FootprintClass::Local(s) => {
                assert!(!footprint.is_empty());
                assert!(footprint.iter().all(|&c| partition.shard_of(c) == Some(s)));
            }
            FootprintClass::Straddling => {
                let first = partition.shard_of(footprint[0]);
                assert!(footprint.iter().any(|&c| partition.shard_of(c) != first));
            }
        }
    }

    // The reported local fraction is a well-formed probability.
    let f = partition.local_fraction(&nbhd);
    assert!((0.0..=1.0).contains(&f), "local fraction {f} out of range");
    partition
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn partition_invariants_hold_on_random_topologies(
        nodes in 16usize..=48,
        l in 1u32..=2,
        requested in 1usize..=6,
        seed in 0u64..1_000_000,
    ) {
        let cfg = WorkloadConfig { nodes, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generate_network(&cfg, &mut rng);
        check_partition(&net, l, requested);
    }
}

/// Zoo sweep: the partition invariants hold on every preset topology shape
/// (Waxman, SAGIN tiers, Barabási–Albert, fat-tree with non-cloudlet
/// switches).
#[test]
fn partition_invariants_hold_on_zoo_presets() {
    for preset in ["waxman-100", "ba-1k", "fattree-16"] {
        let built = ScenarioSpec::preset(preset).expect("known preset").build();
        for requested in [1, 3, 4] {
            check_partition(&built.network, 2, requested);
        }
    }
}

/// The headline partition-quality claim: on `sagin-1k` at `l = 2`, at least
/// 80% of covered nodes' footprints land inside a single shard — the
/// eligibility ceiling for the lock-free commit path. The builder earns this
/// adaptively: sagin footprints span a median of ~830 cloudlets (every edge
/// node reaches the all-cloudlet space core within two hops), so no balanced
/// multi-shard layout can be local and the merge pass collapses ownership
/// into fewer shards rather than shipping a partition that straddles
/// everything. The printed shard count records how many survived.
#[test]
fn sagin_1k_partition_is_shard_local_at_l2() {
    let built = ScenarioSpec::preset("sagin-1k").expect("known preset").build();
    let nbhd = built.network.neighborhood_index(2);
    for requested in [2usize, 4, 8] {
        let partition = check_partition(&built.network, 2, requested);
        let fraction = partition.local_fraction(&nbhd);
        println!(
            "sagin-1k l=2 shards={}: measured shard-local fraction {fraction:.3}",
            partition.num_shards(),
        );
        if requested == 4 {
            assert!(
                fraction >= 0.8,
                "sagin-1k l=2 K=4: shard-local fraction {fraction:.3} < 0.8 — \
                 partition quality regressed"
            );
        }
    }
}

/// Fixture for the reservation-exactness tests: a random network, a 3-shard
/// partition, and a debit set guaranteed to straddle shards (the first
/// cloudlet of each shard), with integer amounts so equality is exact.
fn cross_shard_fixture() -> (MecNetwork, ShardedCapacity, Vec<(NodeId, f64)>) {
    let cfg = WorkloadConfig { nodes: 40, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(99);
    let net = generate_network(&cfg, &mut rng);
    let nbhd = net.neighborhood_index(1);
    let partition = ShardPartition::build(&net, &nbhd, 3);
    let debits: Vec<(NodeId, f64)> =
        (0..partition.num_shards()).map(|s| (partition.members(s)[0], 3.0 + s as f64)).collect();
    let initial: Vec<f64> = (0..net.num_nodes()).map(|v| net.capacity(NodeId(v))).collect();
    let cap = ShardedCapacity::new(&net, &initial, partition, true);
    (net, cap, debits)
}

#[test]
fn cross_shard_reserve_then_abort_is_bitwise_exact() {
    let (_, cap, debits) = cross_shard_fixture();
    assert!(debits.len() >= 2, "fixture must straddle shards");
    let before = cap.snapshot();
    let mut resv = cap.try_reserve(&debits).expect("capacity is plentiful");
    // The reserve actually moved capacity...
    for &(node, amount) in &debits {
        assert_eq!(cap.residual(node.index()), before[node.index()] - amount);
    }
    // ...and abort restores every node bit-for-bit.
    cap.abort(&mut resv).expect("pending reservation aborts");
    let after = cap.snapshot();
    for v in 0..before.len() {
        assert_eq!(
            before[v].to_bits(),
            after[v].to_bits(),
            "node {v}: abort did not restore the residual exactly"
        );
    }
    assert!(cap.drain_logs().is_empty(), "aborted reservations must not reach the log");
}

#[test]
fn cross_shard_reserve_then_commit_debits_exactly_and_logs() {
    let (_, cap, debits) = cross_shard_fixture();
    let before = cap.snapshot();
    let mut resv = cap.try_reserve(&debits).expect("capacity is plentiful");
    cap.commit(&mut resv, 42).expect("pending reservation commits");
    for &(node, amount) in &debits {
        assert_eq!(
            cap.residual(node.index()),
            before[node.index()] - amount,
            "node {}: committed debit is not exact",
            node.index()
        );
    }
    let log = cap.drain_logs();
    assert_eq!(log.len(), 1, "one commit, one ledger entry");
    assert_eq!(log[0].tag, 42);
    let mut logged: Vec<(usize, f64)> = log[0].debits.clone();
    logged.sort_by_key(|&(idx, _)| idx);
    let mut expected: Vec<(usize, f64)> = debits.iter().map(|&(n, a)| (n.index(), a)).collect();
    expected.sort_by_key(|&(idx, _)| idx);
    assert_eq!(logged, expected, "ledger must record the exact per-node debits");
}
